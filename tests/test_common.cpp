// Unit tests for src/common: bit manipulation, hashing, the PRNG, the
// spinlock and topology helpers.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/bitops.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/topology.hpp"

namespace poseidon {
namespace {

TEST(Bitops, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ull << 63));
  EXPECT_FALSE(is_pow2((1ull << 63) + 1));
}

TEST(Bitops, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(4), 2u);
  EXPECT_EQ(log2_floor(~0ull), 63u);
}

TEST(Bitops, Log2Ceil) {
  EXPECT_EQ(log2_ceil(1), 0u);
  EXPECT_EQ(log2_ceil(2), 1u);
  EXPECT_EQ(log2_ceil(3), 2u);
  EXPECT_EQ(log2_ceil(4), 2u);
  EXPECT_EQ(log2_ceil(5), 3u);
  EXPECT_EQ(log2_ceil((1ull << 40) + 1), 41u);
}

TEST(Bitops, RoundUpPow2) {
  EXPECT_EQ(round_up_pow2(0), 1u);
  EXPECT_EQ(round_up_pow2(1), 1u);
  EXPECT_EQ(round_up_pow2(3), 4u);
  EXPECT_EQ(round_up_pow2(4), 4u);
  EXPECT_EQ(round_up_pow2(1000), 1024u);
}

TEST(Bitops, AlignUpDown) {
  EXPECT_EQ(align_up(0, 4096), 0u);
  EXPECT_EQ(align_up(1, 4096), 4096u);
  EXPECT_EQ(align_up(4096, 4096), 4096u);
  EXPECT_EQ(align_down(4097, 4096), 4096u);
  EXPECT_EQ(align_down(4095, 4096), 0u);
}

TEST(Bitops, PropertyRoundTrip) {
  // For every v, 2^log2_ceil(v) >= v and 2^log2_floor(v) <= v.
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = (rng.next() >> 8) | 1;  // nonzero, < 2^56
    EXPECT_GE(std::uint64_t{1} << log2_ceil(v), v);
    EXPECT_LE(std::uint64_t{1} << log2_floor(v), v);
  }
}

TEST(Hash, Mix64Deterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hash, Mix64Bijective) {
  // No collisions over a large sample implies good dispersal; bijectivity
  // can't be proven by sampling, but any collision disproves it.
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second) << "collision at " << i;
  }
}

TEST(Hash, BytesBasics) {
  EXPECT_EQ(hash_bytes("abc", 3), hash_bytes("abc", 3));
  EXPECT_NE(hash_bytes("abc", 3), hash_bytes("abd", 3));
  EXPECT_NE(hash_bytes("abc", 3), hash_bytes("abc", 2));
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(7), b(7), c(8);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next();
    EXPECT_EQ(x, b.next());
  }
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowIsBounded) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 100000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, InIsInclusive) {
  Xoshiro256 rng(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.next_in(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Xoshiro256 rng(5);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);  // mean of U[0,1)
}

TEST(Rng, RoughUniformity) {
  Xoshiro256 rng(6);
  unsigned buckets[16] = {};
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(16)];
  for (unsigned b : buckets) {
    EXPECT_NEAR(static_cast<double>(b), kDraws / 16.0, kDraws / 16.0 * 0.1);
  }
}

TEST(Spinlock, MutualExclusion) {
  Spinlock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  constexpr int kThreads = 8, kIters = 20000;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        Guard<Spinlock> g(lock);
        ++counter;  // data race unless the lock works
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(Spinlock, TryLock) {
  Spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Topology, CpuCountPositive) { EXPECT_GE(cpu_count(), 1u); }

TEST(Topology, CurrentCpuInRange) { EXPECT_LT(current_cpu(), cpu_count()); }

TEST(Topology, ThreadOrdinalsDistinct) {
  const unsigned mine = thread_ordinal();
  EXPECT_EQ(mine, thread_ordinal());  // stable per thread
  unsigned other = mine;
  std::thread t([&] { other = thread_ordinal(); });
  t.join();
  EXPECT_NE(mine, other);
}

}  // namespace
}  // namespace poseidon
