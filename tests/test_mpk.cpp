// Tests for the MPK protection domain: mode resolution, write windows,
// nesting, and (death tests) fault-on-write outside the allocator.
#include <gtest/gtest.h>

#include <sys/mman.h>

#include "mpk/mpk.hpp"

namespace poseidon::mpk {
namespace {

class MappedPage {
 public:
  MappedPage() {
    base_ = ::mmap(nullptr, kLen, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    EXPECT_NE(base_, MAP_FAILED);
  }
  ~MappedPage() { ::munmap(base_, kLen); }
  void* get() const { return base_; }
  volatile char* bytes() const { return static_cast<volatile char*>(base_); }
  static constexpr std::size_t kLen = 16384;

 private:
  void* base_;
};

TEST(Mpk, ModeNames) {
  EXPECT_STREQ(mode_name(ProtectMode::kAuto), "auto");
  EXPECT_STREQ(mode_name(ProtectMode::kPkey), "pkey");
  EXPECT_STREQ(mode_name(ProtectMode::kMprotect), "mprotect");
  EXPECT_STREQ(mode_name(ProtectMode::kNone), "none");
}

TEST(Mpk, AutoResolvesToPkeyOrNone) {
  MappedPage page;
  ProtectionDomain d(page.get(), MappedPage::kLen, ProtectMode::kAuto);
  if (pku_supported()) {
    EXPECT_EQ(d.mode(), ProtectMode::kPkey);
  } else {
    EXPECT_EQ(d.mode(), ProtectMode::kNone);
  }
}

TEST(Mpk, NoneModeAllowsEverything) {
  MappedPage page;
  ProtectionDomain d(page.get(), MappedPage::kLen, ProtectMode::kNone);
  page.bytes()[0] = 1;  // no window, still writable
  EXPECT_EQ(page.bytes()[0], 1);
}

TEST(Mpk, MprotectWindowAllowsWrites) {
  MappedPage page;
  ProtectionDomain d(page.get(), MappedPage::kLen, ProtectMode::kMprotect);
  {
    WriteWindow w(&d);
    page.bytes()[100] = 42;
  }
  EXPECT_EQ(page.bytes()[100], 42);  // reads stay legal outside the window
}

TEST(Mpk, MprotectWindowsNest) {
  MappedPage page;
  ProtectionDomain d(page.get(), MappedPage::kLen, ProtectMode::kMprotect);
  {
    WriteWindow outer(&d);
    {
      WriteWindow inner(&d);
      page.bytes()[1] = 1;
    }
    page.bytes()[2] = 2;  // still inside the outer window
  }
  EXPECT_EQ(page.bytes()[1], 1);
  EXPECT_EQ(page.bytes()[2], 2);
}

TEST(Mpk, NullDomainWindowIsNoop) {
  WriteWindow w(nullptr);  // must not crash
}

using MpkDeathTest = ::testing::Test;

TEST(MpkDeathTest, MprotectBlocksStrayWrite) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        MappedPage page;
        ProtectionDomain d(page.get(), MappedPage::kLen,
                           ProtectMode::kMprotect);
        page.bytes()[0] = 1;  // outside any write window -> SIGSEGV
      },
      "");
}

TEST(MpkDeathTest, WriteAfterWindowCloseBlocked) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        MappedPage page;
        ProtectionDomain d(page.get(), MappedPage::kLen,
                           ProtectMode::kMprotect);
        { WriteWindow w(&d); page.bytes()[0] = 1; }
        page.bytes()[1] = 2;  // window closed again
      },
      "");
}

TEST(MpkDeathTest, PkeyBlocksStrayWriteWhenSupported) {
  if (!pku_supported()) GTEST_SKIP() << "CPU lacks PKU";
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ASSERT_DEATH(
      {
        MappedPage page;
        ProtectionDomain d(page.get(), MappedPage::kLen, ProtectMode::kPkey);
        page.bytes()[0] = 1;
      },
      "");
}

}  // namespace
}  // namespace poseidon::mpk
