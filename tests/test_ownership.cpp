// Exclusive heap ownership: OFD locks + the superblock owner record.
//
// A writable open locks every shard member (members first, head last) and
// stamps (pid, boot id, start time) into the superblock; a clean close
// clears the stamp strictly after the seal flip.  A second writer — another
// process or this one — bounces with kHeapBusy; a reader coexists; a dead
// owner (lock free, stamp present) is superseded at the next writable open.
// Child processes report through exit codes: gtest assertions do not cross
// fork().
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <memory>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/ownership.hpp"
#include "obs/flight_recorder.hpp"
#include "pmem/pool.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

// Two explicit shards regardless of the box's topology (POSEIDON_FAKE_NUMA
// is cached at first use, so tests pin the count through Options instead).
core::Options two_shard_opts() {
  core::Options o = small_opts(4);
  o.nshards = 2;
  o.shard_policy = core::ShardPolicy::kPerThread;
  o.policy = core::SubheapPolicy::kPerThread;
  return o;
}

int reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
  return status;
}

bool wait_byte(int fd) {
  char c = 0;
  ssize_t n;
  while ((n = ::read(fd, &c, 1)) < 0 && errno == EINTR) {}
  return n == 1;
}

TEST(Ownership, SecondProcessOpenRejectedReaderCoexists) {
  TempHeapPath path("own_busy");
  auto h = Heap::create(path.str(), 4 << 20, two_shard_opts());
  const pid_t me = ::getpid();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Writable open against a live owner must bounce with the typed code.
    try {
      auto h2 = Heap::open(path.str(), two_shard_opts());
      ::_exit(10);  // a second writer got in — exclusion is broken
    } catch (const Error& e) {
      if (e.poseidon_code() != ErrorCode::kHeapBusy) ::_exit(11);
    } catch (...) {
      ::_exit(12);
    }
    // A read-only open must coexist and see the live writer's stamp.
    try {
      core::Options ro = two_shard_opts();
      ro.read_only = true;
      auto r = Heap::open(path.str(), ro);
      if (r->shard(0)->owner().pid != static_cast<std::uint64_t>(me)) {
        ::_exit(13);
      }
      if (!r->alloc(64).is_null()) ::_exit(14);  // reader must not mutate
    } catch (...) {
      ::_exit(15);
    }
    ::_exit(0);
  }
  const int status = reap(pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << "child exit code disagrees";
  // The bounced opener must not have disturbed us.
  NvPtr p = h->alloc(128);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), core::FreeResult::kOk);
  EXPECT_TRUE(h->check_invariants());
}

TEST(Ownership, StaleOwnerTakeoverAfterSigkill) {
  TempHeapPath path("own_takeover");
  Heap::create(path.str(), 4 << 20, two_shard_opts());  // clean close

  int pfd[2];
  ASSERT_EQ(::pipe(pfd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pfd[0]);
    try {
      auto h = Heap::open(path.str(), two_shard_opts());
      (void)h->alloc(256);
      const char c = 'O';
      (void)!::write(pfd[1], &c, 1);
      for (;;) ::pause();  // hold the locks until SIGKILL
    } catch (...) {
      ::_exit(20);
    }
  }
  ::close(pfd[1]);
  ASSERT_TRUE(wait_byte(pfd[0])) << "child never opened the heap";
  ::close(pfd[0]);
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  (void)reap(pid);

  // The kill released the locks but left the stamp: visible read-only.
  {
    core::Options ro = two_shard_opts();
    ro.read_only = true;
    auto r = Heap::open(path.str(), ro);
    EXPECT_EQ(r->shard(0)->owner().pid, static_cast<std::uint64_t>(pid));
    EXPECT_EQ(r->metrics().owner_takeovers.read(), 0u)
        << "read-only opens never take over";
  }
  // The next writable open supersedes the dead owner on every shard.
  auto h = Heap::open(path.str(), two_shard_opts());
  EXPECT_EQ(h->metrics().owner_takeovers.read(), 2u);
  EXPECT_EQ(h->shard(0)->owner().pid,
            static_cast<std::uint64_t>(::getpid()));
  bool flight_seen = false;
  for (const auto& e : h->flight_events()) {
    flight_seen =
        flight_seen ||
        e.op == static_cast<std::uint8_t>(obs::FlightOp::kOwnerTakeover);
  }
  EXPECT_TRUE(flight_seen) << "takeover must leave a flight event";
  EXPECT_TRUE(h->check_invariants());
}

TEST(Ownership, CleanCloseClearsOwnerAndCountsNoTakeover) {
  TempHeapPath path("own_clean");
  Heap::create(path.str(), 4 << 20, two_shard_opts());
  {
    core::Options ro = two_shard_opts();
    ro.read_only = true;
    auto r = Heap::open(path.str(), ro);
    EXPECT_EQ(r->shard(0)->owner().pid, 0u) << "clean close left a stamp";
  }
  auto h = Heap::open(path.str(), two_shard_opts());
  EXPECT_EQ(h->metrics().owner_takeovers.read(), 0u);
}

TEST(Ownership, HalfLockedShardSetNeverSplitsOwnership) {
  TempHeapPath path("own_split");
  Heap::create(path.str(), 4 << 20, two_shard_opts());
  const std::string member = path.str() + ".shard1";

  // A foreign process pins ONE member.  Assembly locks members before the
  // head, so the whole open must bounce — never "head owned here, member
  // owned there".
  int pfd[2];
  ASSERT_EQ(::pipe(pfd), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pfd[0]);
    try {
      pmem::Pool pool = pmem::Pool::open(member);
      const char c = 'L';
      (void)!::write(pfd[1], &c, 1);
      for (;;) ::pause();
    } catch (...) {
      ::_exit(30);
    }
  }
  ::close(pfd[1]);
  ASSERT_TRUE(wait_byte(pfd[0])) << "child never locked the member";
  ::close(pfd[0]);

  try {
    auto h = Heap::open(path.str(), two_shard_opts());
    FAIL() << "open must refuse a half-locked shard set";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kHeapBusy) << e.what();
  }
  // The failed attempt must have released everything it took: once the
  // member holder dies, the set opens whole, with no takeover (the failed
  // attempt never got far enough to stamp anything).
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  (void)reap(pid);
  auto h = Heap::open(path.str(), two_shard_opts());
  EXPECT_EQ(h->metrics().owner_takeovers.read(), 0u);
  NvPtr p = h->alloc(64);
  EXPECT_FALSE(p.is_null());
  EXPECT_TRUE(h->check_invariants());
}

TEST(Ownership, ReadOnlyOpenCoexistsInProcessAndRejectsMutation) {
  TempHeapPath path("own_ro");
  auto w = Heap::create(path.str(), 4 << 20, two_shard_opts());
  NvPtr keep = w->alloc(512);
  ASSERT_FALSE(keep.is_null());
  std::memset(w->raw(keep), 0x5a, 512);
  w->set_root(keep);

  core::Options ro = two_shard_opts();
  ro.read_only = true;
  auto r = Heap::open(path.str(), ro);  // same process, writer live
  EXPECT_EQ(r->shard(0)->owner().pid, static_cast<std::uint64_t>(::getpid()));
  EXPECT_EQ(r->root(), keep);
  EXPECT_EQ(static_cast<const unsigned char*>(r->raw(r->root()))[0], 0x5a);
  // Every mutating entry point is gated.
  EXPECT_TRUE(r->alloc(64).is_null());
  EXPECT_TRUE(r->tx_alloc(64, true).is_null());
  EXPECT_EQ(r->free(keep), core::FreeResult::kInvalidPointer);
  EXPECT_THROW(r->set_root(NvPtr::null()), Error);
  EXPECT_THROW((void)r->fsck(), Error);
  // The writer is unaffected by the reader's lifetime.
  r.reset();
  NvPtr p = w->alloc(64);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(w->free(p), core::FreeResult::kOk);
  EXPECT_TRUE(w->check_invariants());
}

TEST(Ownership, CreateReadOnlyIsInvalid) {
  TempHeapPath path("own_create_ro");
  core::Options o = two_shard_opts();
  o.read_only = true;
  EXPECT_THROW(Heap::create(path.str(), 4 << 20, o), std::invalid_argument);
}

TEST(Ownership, RecordPrimitives) {
  // The incarnation triple behind stale-owner classification.
  EXPECT_NE(core::boot_id_hash(), 0u);
  EXPECT_EQ(core::boot_id_hash(), core::boot_id_hash()) << "must be cached";
  EXPECT_NE(core::proc_start_time(::getpid()), 0u);
  EXPECT_TRUE(core::process_alive(::getpid()));

  core::OwnerRecord r{};
  r.pid = static_cast<std::uint64_t>(::getpid());
  r.boot_id = core::boot_id_hash();
  r.start_time = core::proc_start_time(::getpid());
  r.heartbeat = 1;
  r.csum = core::owner_csum(r);
  EXPECT_EQ(core::classify_owner(r), core::OwnerStaleness::kOwnerAlive);
  core::OwnerRecord torn = r;
  torn.csum ^= 1;
  EXPECT_EQ(core::classify_owner(torn), core::OwnerStaleness::kTorn);
  core::OwnerRecord rebooted = r;
  rebooted.boot_id ^= 1;
  rebooted.csum = core::owner_csum(rebooted);
  EXPECT_EQ(core::classify_owner(rebooted), core::OwnerStaleness::kRebooted);
  core::OwnerRecord reused = r;
  reused.start_time ^= 1;
  reused.csum = core::owner_csum(reused);
  EXPECT_EQ(core::classify_owner(reused), core::OwnerStaleness::kPidReused);
}

}  // namespace
}  // namespace poseidon
