// Property-based tests: long randomized operation sequences checked
// against a reference model, across seeds (TEST_P), plus multi-threaded
// stress with cross-thread frees and whole-heap invariant audits.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/heap.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

// Reference model: NvPtr -> (size requested, fill byte).  The key is the
// full 16-byte persistent pointer — since v5 a heap is a shard set, so
// `packed` alone is only unique within one shard.
struct ModelEntry {
  std::uint64_t size;
  unsigned char fill;
};

using ModelKey = std::pair<std::uint64_t, std::uint64_t>;  // {heap_id, packed}

ModelKey key_of(NvPtr p) { return {p.heap_id, p.packed}; }

class RandomOpsSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomOpsSweep, ModelEquivalence) {
  const std::uint64_t seed = GetParam();
  TempHeapPath path("prop");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 4 << 20, o);

  Xoshiro256 rng(seed);
  std::map<ModelKey, ModelEntry> model;
  std::vector<NvPtr> live;

  for (int step = 0; step < 4000; ++step) {
    const unsigned op = static_cast<unsigned>(rng.next_below(10));
    if (op < 6 || live.empty()) {
      // Allocate a size spanning several classes, occasionally huge.
      const std::uint64_t size =
          op == 0 ? (64u << rng.next_below(12)) : 16 + rng.next_below(2000);
      NvPtr p = h->alloc(size);
      if (p.is_null()) continue;  // exhaustion is legal
      const auto fill = static_cast<unsigned char>(rng.next());
      std::memset(h->raw(p), fill, size);
      ASSERT_TRUE(model.emplace(key_of(p), ModelEntry{size, fill}).second)
          << "allocator returned a live block";
      live.push_back(p);
    } else if (op < 9) {
      const std::size_t k = rng.next_below(live.size());
      NvPtr p = live[k];
      // Contents must be exactly what the model wrote (no overlap ever).
      const ModelEntry& e = model.at(key_of(p));
      const auto* bytes = static_cast<const unsigned char*>(h->raw(p));
      for (std::uint64_t i = 0; i < e.size; i += 97) {
        ASSERT_EQ(bytes[i], e.fill) << "user data corrupted";
      }
      ASSERT_EQ(h->free(p), FreeResult::kOk);
      model.erase(key_of(p));
      live[k] = live.back();
      live.pop_back();
    } else {
      // Adversarial frees: must all be rejected without damage.  The bogus
      // pointer targets a random shard of the set so cross-shard routing
      // gets the same validation coverage as the head.
      const std::uint64_t sid =
          h->shard_heap_id(static_cast<unsigned>(
              rng.next_below(h->shard_count())));
      NvPtr bogus = NvPtr::make(sid != 0 ? sid : h->heap_id(), 0,
                                rng.next_below(1 << 20));
      const FreeResult r = h->free(bogus);
      if (model.count(key_of(bogus)) == 0) {
        ASSERT_NE(r, FreeResult::kOk) << "accepted a bogus free";
      } else {
        // Randomly hit a live block: legal free; sync the model.
        ASSERT_EQ(r, FreeResult::kOk);
        model.erase(key_of(bogus));
        std::erase_if(live, [&](NvPtr q) { return q == bogus; });
      }
    }
    if (step % 500 == 0) {
      std::string why;
      ASSERT_TRUE(h->check_invariants(&why)) << "step " << step << ": " << why;
    }
  }
  EXPECT_EQ(h->stats().live_blocks, model.size());
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;

  // Drain and verify the heap returns to a fully merged state.
  for (const auto& [key, entry] : model) {
    ASSERT_EQ(h->free(NvPtr{key.first, key.second}), FreeResult::kOk);
  }
  EXPECT_EQ(h->stats().live_blocks, 0u);
  NvPtr whole = h->alloc(h->user_capacity() / h->nsubheaps());
  EXPECT_FALSE(whole.is_null()) << "defrag must rebuild a maximal block";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomOpsSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(PropertyReopen, StateSurvivesManyReopenCycles) {
  TempHeapPath path("prop_reopen");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  Xoshiro256 rng(4242);
  std::map<ModelKey, ModelEntry> model;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    (void)h;
  }
  for (int cycle = 0; cycle < 8; ++cycle) {
    auto h = Heap::open(path.str(), o);
    ASSERT_EQ(h->stats().live_blocks, model.size()) << "cycle " << cycle;
    // Verify all survivors, free half, allocate some more.
    std::vector<ModelKey> keys;
    for (const auto& [key, e] : model) keys.push_back(key);
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const NvPtr p{keys[i].first, keys[i].second};
      const ModelEntry& e = model.at(keys[i]);
      const auto* bytes = static_cast<const unsigned char*>(h->raw(p));
      ASSERT_EQ(bytes[0], e.fill);
      ASSERT_EQ(bytes[e.size - 1], e.fill);
      if (i % 2 == 0) {
        ASSERT_EQ(h->free(p), FreeResult::kOk);
        model.erase(keys[i]);
      }
    }
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t size = 16 + rng.next_below(4000);
      NvPtr p = h->alloc(size);
      if (p.is_null()) break;
      const auto fill = static_cast<unsigned char>(rng.next());
      std::memset(h->raw(p), fill, size);
      model.emplace(key_of(p), ModelEntry{size, fill});
    }
    ASSERT_TRUE(h->check_invariants());
  }
}

TEST(Concurrency, CrossThreadFreesKeepInvariants) {
  // Producer/consumer handoff: half the threads allocate into a shared
  // ring, the other half free from it — the paper's §5.7 contention case.
  TempHeapPath path("conc_handoff");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 8 << 20, o);

  constexpr int kPairs = 2, kOpsPerThread = 20000;
  // The handed-off NvPtr is 16 bytes (since v5 its heap id names a shard,
  // so packed alone no longer identifies a block) — hand off a heap node
  // holding the full pointer instead of packing it into one atomic word.
  std::vector<std::atomic<NvPtr*>> ring(256);
  for (auto& r : ring) r.store(nullptr);
  std::atomic<std::uint64_t> alloc_count{0}, free_count{0}, reject{0};

  std::vector<std::thread> threads;
  for (int pair = 0; pair < kPairs; ++pair) {
    threads.emplace_back([&, pair] {  // producer
      Xoshiro256 rng(100 + pair);
      for (int i = 0; i < kOpsPerThread; ++i) {
        NvPtr p = h->alloc(32 + rng.next_below(400));
        if (p.is_null()) continue;
        alloc_count.fetch_add(1);
        NvPtr* prev =
            ring[rng.next_below(ring.size())].exchange(new NvPtr(p));
        if (prev != nullptr) {
          if (h->free(*prev) == FreeResult::kOk) {
            free_count.fetch_add(1);
          } else {
            reject.fetch_add(1);
          }
          delete prev;
        }
      }
    });
    threads.emplace_back([&, pair] {  // consumer
      Xoshiro256 rng(200 + pair);
      for (int i = 0; i < kOpsPerThread; ++i) {
        NvPtr* got = ring[rng.next_below(ring.size())].exchange(nullptr);
        if (got == nullptr) continue;
        if (h->free(*got) == FreeResult::kOk) {
          free_count.fetch_add(1);
        } else {
          reject.fetch_add(1);
        }
        delete got;
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& r : ring) {
    NvPtr* got = r.load();
    if (got != nullptr) {
      if (h->free(*got) == FreeResult::kOk) free_count.fetch_add(1);
      delete got;
    }
  }
  EXPECT_EQ(reject.load(), 0u) << "every handed-off pointer is valid exactly once";
  EXPECT_EQ(alloc_count.load(), free_count.load());
  EXPECT_EQ(h->stats().live_blocks, 0u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST(Concurrency, ParallelAllocFreeChurn) {
  TempHeapPath path("conc_churn");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 8 << 20, o);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      std::vector<NvPtr> mine;
      for (int i = 0; i < 15000; ++i) {
        if (mine.size() < 64 && (mine.empty() || (rng.next() & 1))) {
          NvPtr p = h->alloc(32u << rng.next_below(8));
          if (!p.is_null()) mine.push_back(p);
        } else {
          const std::size_t k = rng.next_below(mine.size());
          if (h->free(mine[k]) != FreeResult::kOk) failed.store(true);
          mine[k] = mine.back();
          mine.pop_back();
        }
      }
      for (const auto& p : mine) {
        if (h->free(p) != FreeResult::kOk) failed.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(h->stats().live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

}  // namespace
}  // namespace poseidon::core
