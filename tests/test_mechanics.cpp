// Tests for fine-grained mechanics introduced by the performance work and
// hardening passes: undo-save deduplication and deferred fencing, counter
// recomputation at recovery, block enumeration, NUMA helpers, and
// FAST-FAIR scans racing splits.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>
#include <vector>

#include "alloc_iface/allocator.hpp"
#include "common/numa.hpp"
#include "core/heap.hpp"
#include "core/undo_log.hpp"
#include "index/fastfair.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::FreeResult;
using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

struct UndoArena {
  core::UndoLogT<8> log;
  std::uint64_t words[16];
};

TEST(UndoDedup, SameRangeSavedOnceProducesOneEntry) {
  auto* arena = static_cast<UndoArena*>(::aligned_alloc(64, sizeof(UndoArena)));
  std::memset(arena, 0, sizeof(UndoArena));
  auto* base = reinterpret_cast<std::byte*>(arena);
  {
    core::UndoLogger undo(arena->log, base, true);
    undo.save_obj(arena->words[0]);
    undo.save_obj(arena->words[0]);
    undo.save_obj(arena->words[0]);
    EXPECT_EQ(undo.used(), 1u) << "duplicate saves dedupe";
    undo.save_obj(arena->words[1]);
    EXPECT_EQ(undo.used(), 2u);
    undo.commit();
  }
  ::free(arena);
}

TEST(UndoDedup, DedupKeepsOldestValue) {
  auto* arena = static_cast<UndoArena*>(::aligned_alloc(64, sizeof(UndoArena)));
  std::memset(arena, 0, sizeof(UndoArena));
  auto* base = reinterpret_cast<std::byte*>(arena);
  arena->words[0] = 111;
  {
    core::UndoLogger undo(arena->log, base, true);
    undo.save_obj(arena->words[0]);
    arena->words[0] = 222;
    undo.save_obj(arena->words[0]);  // deduped: must NOT capture 222
    arena->words[0] = 333;
    // Crash without commit:
  }
  core::UndoLogger::replay(arena->log, base);
  EXPECT_EQ(arena->words[0], 111u) << "pre-operation value restored";
  ::free(arena);
}

TEST(UndoDedup, DifferentLengthsAreDistinctEntries) {
  auto* arena = static_cast<UndoArena*>(::aligned_alloc(64, sizeof(UndoArena)));
  std::memset(arena, 0, sizeof(UndoArena));
  auto* base = reinterpret_cast<std::byte*>(arena);
  {
    core::UndoLogger undo(arena->log, base, true);
    undo.save(&arena->words[0], 8);
    undo.save(&arena->words[0], 16);  // same address, wider range
    EXPECT_EQ(undo.used(), 2u);
    undo.commit();
  }
  ::free(arena);
}

TEST(CounterRecovery, StaleCountersAreRecomputedOnOpen) {
  // Counters are outside the undo protocol; recovery recomputes them.
  // Deliberately corrupt them in the (unprotected) metadata and reopen.
  TempHeapPath path("counter_fix");
  std::uint64_t live = 0;
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    for (int i = 0; i < 37; ++i) (void)h->alloc(64);
    live = h->stats().live_blocks;
    ASSERT_EQ(live, 37u);
    // Corrupt the persisted counters directly (protection mode is kNone
    // in unit tests, so this simulates a crash that lost counter lines).
    auto [meta, len] = h->metadata_region();
    (void)len;
    // Find the counters by observing stats drift after scribbling is too
    // fragile; instead rely on reopen: recovery recomputes regardless.
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->stats().live_blocks, live);
  EXPECT_TRUE(h->check_invariants());
}

TEST(VisitBlocks, EnumeratesExactlyTheLiveAndFreeSet) {
  TempHeapPath path("visit");
  auto h = Heap::create(path.str(), 2 << 20, small_opts(2));
  std::vector<NvPtr> mine;
  for (int i = 0; i < 20; ++i) mine.push_back(h->alloc(64 << (i % 3)));
  for (int i = 0; i < 20; i += 4) {
    h->free(mine[i]);
  }
  std::map<std::uint64_t, std::uint32_t> seen;  // packed -> status
  std::uint64_t free_blocks = 0, live_blocks = 0;
  h->visit_blocks([&](unsigned sub, std::uint64_t off, std::uint32_t cls,
                      std::uint32_t status) {
    (void)cls;
    seen[NvPtr::make(h->heap_id(), static_cast<std::uint16_t>(sub), off)
             .packed] = status;
    if (status == core::kBlockAllocated) ++live_blocks; else ++free_blocks;
  });
  const auto st = h->stats();
  EXPECT_EQ(live_blocks, st.live_blocks);
  EXPECT_EQ(free_blocks, st.free_blocks);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(seen.count(mine[i].packed)) << i;
    EXPECT_EQ(seen[mine[i].packed], i % 4 == 0 ? core::kBlockFree
                                               : core::kBlockAllocated)
        << i;
  }
}

TEST(Numa, TopologyQueriesAreSane) {
  EXPECT_GE(numa_node_count(), 1u);
  EXPECT_LT(numa_node_of_cpu(0), numa_node_count());
}

TEST(Numa, BindIsBestEffortAndHarmless) {
  alignas(4096) static char region[8192];
  // Must never crash; on single-node machines it is a no-op success.
  const bool ok = numa_bind_region(region, sizeof(region), 0);
  if (numa_node_count() == 1) EXPECT_TRUE(ok);
  region[0] = 1;  // region stays usable either way
  EXPECT_EQ(region[0], 1);
}

TEST(FastFairConcurrency, ScansRacingSplitsNeverMissSettledKeys) {
  // A writer splits leaves continuously while readers scan ranges that
  // were fully inserted beforehand: every settled key must appear.
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  index::FastFairTree tree(alloc.get());
  constexpr std::uint64_t kSettled = 2000;
  for (std::uint64_t k = 1; k <= kSettled; ++k) {
    ASSERT_TRUE(tree.insert(k * 10, k));
  }
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread writer([&] {
    // Interleave new keys between the settled ones, forcing splits in the
    // same leaves the scanners traverse.
    for (std::uint64_t k = 1; k <= kSettled && !stop.load(); ++k) {
      tree.insert(k * 10 + 5, k);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      std::vector<std::uint64_t> vals(kSettled * 2 + 16);
      while (!stop.load()) {
        for (std::uint64_t k = 1; k <= kSettled; k += 97) {
          if (!tree.search(k * 10).has_value()) errors.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0) << "settled keys temporarily invisible";
  std::string why;
  EXPECT_TRUE(tree.check(&why)) << why;
}

TEST(FastFairShape, UnderfullLeavesAreLegal) {
  // FAST-FAIR never merges on delete; heavy removal leaves underfull (even
  // empty) leaves that must stay structurally valid and searchable.
  iface::AllocatorConfig cfg;
  cfg.capacity = 32ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  index::FastFairTree tree(alloc.get());
  for (std::uint64_t k = 1; k <= 3000; ++k) tree.insert(k, k);
  // Remove everything except every 500th key.
  for (std::uint64_t k = 1; k <= 3000; ++k) {
    if (k % 500 != 0) ASSERT_TRUE(tree.remove(k));
  }
  std::string why;
  EXPECT_TRUE(tree.check(&why)) << why;
  for (std::uint64_t k = 500; k <= 3000; k += 500) {
    EXPECT_EQ(tree.search(k), k);
  }
  EXPECT_FALSE(tree.search(499).has_value());
  // Reinsertion into hollowed-out leaves works.
  for (std::uint64_t k = 1; k <= 3000; ++k) {
    if (k % 500 != 0) ASSERT_TRUE(tree.insert(k, k + 1));
  }
  EXPECT_TRUE(tree.check(&why)) << why;
}

}  // namespace
}  // namespace poseidon
