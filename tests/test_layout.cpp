// Layout-level tests: persistent pointer packing, geometry computation
// properties (swept across sub-heap counts and sizes), and on-media
// struct stability guarantees.
#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "core/layout.hpp"
#include "core/nvmptr.hpp"

namespace poseidon::core {
namespace {

TEST(NvPtrPacking, FieldsRoundTrip) {
  const NvPtr p = NvPtr::make(0xdeadbeefcafe1234ull, 0x7ab,
                              0x0000123456789abcull);
  EXPECT_EQ(p.heap_id, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(p.subheap(), 0x7ab);
  EXPECT_EQ(p.offset(), 0x0000123456789abcull);
}

TEST(NvPtrPacking, NullSemantics) {
  EXPECT_TRUE(NvPtr::null().is_null());
  EXPECT_TRUE((NvPtr{0, 12345}.is_null())) << "heap id 0 is null";
  EXPECT_FALSE(NvPtr::make(1, 0, 0).is_null());
}

TEST(NvPtrPacking, OffsetMaskedTo48Bits) {
  const NvPtr p = NvPtr::make(1, 0, ~std::uint64_t{0});
  EXPECT_EQ(p.offset(), NvPtr::kOffsetMask);
  EXPECT_EQ(p.subheap(), 0);
}

TEST(NvPtrPacking, ExtremesDoNotInterfere) {
  const NvPtr p = NvPtr::make(~std::uint64_t{0}, 0xffff, NvPtr::kOffsetMask);
  EXPECT_EQ(p.subheap(), 0xffff);
  EXPECT_EQ(p.offset(), NvPtr::kOffsetMask);
  const NvPtr q = NvPtr::make(1, 0xffff, 0);
  EXPECT_EQ(q.offset(), 0u);
  EXPECT_EQ(q.subheap(), 0xffff);
}

struct GeoCase {
  unsigned nsubheaps;
  std::uint64_t user_size;
  std::uint64_t level0;
};

class GeometrySweep : public ::testing::TestWithParam<GeoCase> {};

TEST_P(GeometrySweep, RegionsAreDisjointOrderedAndAligned) {
  const GeoCase c = GetParam();
  const Geometry g = compute_geometry(c.nsubheaps, c.user_size, c.level0);

  // Ordering: super < subheap metas < hash regions < cache logs < user.
  EXPECT_GE(g.subheap_meta_off, sizeof(SuperBlock));
  EXPECT_GE(g.hash_region_off,
            g.subheap_meta_off + c.nsubheaps * g.subheap_meta_stride);
  EXPECT_GE(g.cache_log_off,
            g.hash_region_off + c.nsubheaps * g.hash_region_stride);
  EXPECT_GE(g.user_region_off,
            g.cache_log_off + kCacheSlots * g.cache_log_stride);
  // The file ends at the user regions plus huge-page tail padding only.
  EXPECT_GE(g.file_size, g.user_region_off + c.nsubheaps * c.user_size);
  EXPECT_EQ(g.file_size,
            align_up(g.user_region_off + c.nsubheaps * c.user_size,
                     kHugePageSize));

  // Page alignment everywhere (MPK domains and hole punching need it).
  EXPECT_EQ(g.subheap_meta_off % kPageSize, 0u);
  EXPECT_EQ(g.subheap_meta_stride % kPageSize, 0u);
  EXPECT_EQ(g.hash_region_off % kPageSize, 0u);
  EXPECT_EQ(g.hash_region_stride % kPageSize, 0u);
  EXPECT_EQ(g.cache_log_off % kPageSize, 0u);
  EXPECT_EQ(g.cache_log_stride % kPageSize, 0u);
  EXPECT_EQ(g.user_region_off % kPageSize, 0u);
  // The protected prefix stops where the cache logs start: the thread
  // cache's log appends must not pay a wrpkru switch.
  EXPECT_EQ(g.meta_size, g.cache_log_off);
  EXPECT_GE(g.cache_log_stride, sizeof(CacheLogSlot));

  // Strides actually hold their structures.
  EXPECT_GE(g.subheap_meta_stride, sizeof(SubheapMeta));
  EXPECT_GE(g.hash_region_stride, level_offset(c.level0, g.levels_max));
}

TEST_P(GeometrySweep, HashCapacityCoversWorstCase) {
  const GeoCase c = GetParam();
  const Geometry g = compute_geometry(c.nsubheaps, c.user_size, c.level0);
  // Worst case: every block is at minimum granularity.
  const std::uint64_t worst = c.user_size >> kMinBlockShift;
  std::uint64_t capacity = 0;
  for (unsigned lvl = 0; lvl < g.levels_max; ++lvl) {
    capacity += level_slots(c.level0, lvl);
  }
  EXPECT_GE(capacity, worst) << "hash table cannot track a full heap";
  EXPECT_LE(g.levels_max, kMaxHashLevels);
}

TEST_P(GeometrySweep, LevelsArePageAlignedForPunching) {
  const GeoCase c = GetParam();
  const Geometry g = compute_geometry(c.nsubheaps, c.user_size, c.level0);
  for (unsigned lvl = 0; lvl < g.levels_max; ++lvl) {
    EXPECT_EQ(level_offset(c.level0, lvl) % kPageSize, 0u) << lvl;
    EXPECT_EQ(level_slots(c.level0, lvl) * sizeof(MemblockRec) % kPageSize,
              0u)
        << lvl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GeometrySweep,
    ::testing::Values(GeoCase{1, 64 << 10, 256},     // minimum heap
                      GeoCase{1, 1 << 20, 256},      // unit-test config
                      GeoCase{2, 2 << 20, 1024},     //
                      GeoCase{4, 16 << 20, 1024},    //
                      GeoCase{16, 64 << 20, 1024},   // bench config
                      GeoCase{64, 1ull << 30, 4096}  // large server heap
                      ));

TEST(LevelArithmetic, OffsetsArePrefixSums) {
  EXPECT_EQ(level_offset(256, 0), 0u);
  EXPECT_EQ(level_offset(256, 1), 256 * sizeof(MemblockRec));
  EXPECT_EQ(level_offset(256, 2), (256 + 512) * sizeof(MemblockRec));
  EXPECT_EQ(level_slots(256, 3), 2048u);
}

TEST(OnMediaStability, StructSizesAreFrozen) {
  // These sizes are the on-media format; changing them silently breaks
  // every existing pool file.  Bump kVersion when they must change.
  EXPECT_EQ(sizeof(NvPtr), 16u);
  EXPECT_EQ(sizeof(UndoEntry), 128u);
  EXPECT_EQ(sizeof(MemblockRec), 48u);
  EXPECT_EQ(sizeof(MicroLog), 8u + 16 * kMicroCap);
  EXPECT_EQ(sizeof(FreeListHead), 16u);
  EXPECT_EQ(sizeof(CacheLogSlot), 16u + 16 * kCacheLogCap);
}

}  // namespace
}  // namespace poseidon::core
