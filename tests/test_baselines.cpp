// Tests for the baseline allocator models: the extent AVL tree, the
// PMDK-like heap (zones/runs/arenas/action log) and the Makalu-like heap
// (thread-local lists, reclaim list, mark-and-sweep GC).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "baselines/makalu_like/makalu_heap.hpp"
#include "baselines/pmdk_like/avl.hpp"
#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "common/rng.hpp"
#include "tests/test_util.hpp"

namespace poseidon::baselines {
namespace {

using test::TempHeapPath;

TEST(ExtentAvl, InsertRemoveFind) {
  ExtentAvl avl;
  avl.insert({10, 4});
  avl.insert({50, 2});
  avl.insert({80, 8});
  EXPECT_EQ(avl.size(), 3u);
  EXPECT_TRUE(avl.check());
  EXPECT_TRUE(avl.remove({50, 2}));
  EXPECT_FALSE(avl.remove({50, 2}));
  EXPECT_EQ(avl.size(), 2u);
}

TEST(ExtentAvl, BestFitPrefersSmallestSufficient) {
  ExtentAvl avl;
  avl.insert({0, 16});
  avl.insert({100, 4});
  avl.insert({200, 8});
  Extent e;
  ASSERT_TRUE(avl.take_best_fit(3, &e));
  EXPECT_EQ(e.nchunks, 4u);  // smallest >= 3
  ASSERT_TRUE(avl.take_best_fit(3, &e));
  EXPECT_EQ(e.nchunks, 8u);
  ASSERT_TRUE(avl.take_best_fit(16, &e));
  EXPECT_EQ(e.nchunks, 16u);
  EXPECT_FALSE(avl.take_best_fit(1, &e));
}

TEST(ExtentAvl, BestFitFailsWhenTooSmall) {
  ExtentAvl avl;
  avl.insert({0, 2});
  Extent e;
  EXPECT_FALSE(avl.take_best_fit(3, &e));
  EXPECT_EQ(avl.size(), 1u);  // nothing consumed on failure
}

TEST(ExtentAvl, StaysBalancedUnderChurn) {
  ExtentAvl avl;
  Xoshiro256 rng(77);
  std::vector<Extent> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.empty() || (rng.next() & 1)) {
      const Extent e{static_cast<std::uint32_t>(rng.next_below(1 << 20)),
                     static_cast<std::uint32_t>(1 + rng.next_below(64))};
      avl.insert(e);
      live.push_back(e);
    } else {
      const std::size_t k = rng.next_below(live.size());
      EXPECT_TRUE(avl.remove(live[k]));
      live[k] = live.back();
      live.pop_back();
    }
    if (i % 512 == 0) ASSERT_TRUE(avl.check()) << "AVL invariant broke at " << i;
  }
  EXPECT_TRUE(avl.check());
  EXPECT_EQ(avl.size(), live.size());
}

TEST(PmdkHeap, SmallAllocationsAreDistinctAndWritable) {
  TempHeapPath path("pmdk_small");
  auto h = PmdkHeap::create(path.str(), 8 << 20);
  std::set<void*> seen;
  for (int i = 0; i < 500; ++i) {
    void* p = h->alloc(100);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(seen.insert(p).second);
    std::memset(p, i, 100);
  }
  for (void* p : seen) h->free(p);
}

TEST(PmdkHeap, InPlaceHeaderPrecedesObject) {
  // The design under attack in Fig. 3: 16 bytes before the object hold
  // {size, status}.
  TempHeapPath path("pmdk_hdr");
  auto h = PmdkHeap::create(path.str(), 4 << 20);
  void* p = h->alloc(100);
  const auto* hdr = reinterpret_cast<const PmdkHeap::ObjHeader*>(
      static_cast<const char*>(p) - 16);
  EXPECT_EQ(hdr->status, 1u);
  EXPECT_GE(hdr->size, 100u + 0u);
  h->free(p);
  EXPECT_EQ(hdr->status, 0u);
}

TEST(PmdkHeap, LargeAllocationsUseWholeChunks) {
  TempHeapPath path("pmdk_large");
  auto h = PmdkHeap::create(path.str(), 32 << 20);
  const std::uint64_t before = h->count_free_chunks();
  void* p = h->alloc(1 << 20);  // 5 chunks with header
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xcd, 1 << 20);
  EXPECT_LT(h->count_free_chunks(), before);
  h->free(p);
  EXPECT_EQ(h->count_free_chunks(), before);
}

TEST(PmdkHeap, FreeListRebuildFindsFreedUnits) {
  // Frees only clear bitmap bits; a dry bucket triggers the NVMM rescan
  // which must rediscover them (paper §3.3).
  TempHeapPath path("pmdk_rebuild");
  auto h = PmdkHeap::create(path.str(), 4 << 20);
  std::vector<void*> objs;
  for (;;) {
    void* p = h->alloc(48);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  ASSERT_GT(objs.size(), 100u);
  for (void* p : objs) h->free(p);
  // Everything was freed (via the action log); allocation must succeed
  // again after rebuild, for at least as many objects.
  std::size_t again = 0;
  for (;;) {
    void* p = h->alloc(48);
    if (p == nullptr) break;
    ++again;
  }
  EXPECT_GE(again, objs.size());
}

TEST(PmdkHeap, MixedChurnSurvives) {
  TempHeapPath path("pmdk_churn");
  auto h = PmdkHeap::create(path.str(), 32 << 20);
  Xoshiro256 rng(5);
  std::vector<std::pair<void*, std::size_t>> live;
  for (int i = 0; i < 3000; ++i) {
    if (live.size() < 200 && (live.empty() || (rng.next() & 1))) {
      const std::size_t sz = 1 + rng.next_below(300000);
      void* p = h->alloc(sz);
      if (p != nullptr) {
        std::memset(p, 1, sz < 128 ? sz : 128);
        live.emplace_back(p, sz);
      }
    } else {
      const std::size_t k = rng.next_below(live.size());
      h->free(live[k].first);
      live[k] = live.back();
      live.pop_back();
    }
  }
  for (auto& [p, sz] : live) h->free(p);
}

TEST(PmdkHeap, ConcurrentArenasDoNotCollide) {
  TempHeapPath path("pmdk_conc");
  auto h = PmdkHeap::create(path.str(), 32 << 20);
  std::mutex mu;
  std::set<void*> all;
  std::atomic<bool> dup{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      std::vector<void*> mine;
      for (int i = 0; i < 2000; ++i) {
        void* p = h->alloc(64);
        if (p == nullptr) continue;
        mine.push_back(p);
      }
      std::lock_guard<std::mutex> lk(mu);
      for (void* p : mine) {
        if (!all.insert(p).second) dup.store(true);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(dup.load()) << "two arenas handed out the same unit";
  for (void* p : all) h->free(p);
}

TEST(PmdkHeap, RootSurvivesReopen) {
  TempHeapPath path("pmdk_root");
  {
    auto h = PmdkHeap::create(path.str(), 4 << 20);
    void* p = h->alloc(64);
    std::memcpy(p, "root-data", 10);
    h->set_root(p);
  }
  auto h = PmdkHeap::open(path.str());
  ASSERT_NE(h->root(), nullptr);
  EXPECT_STREQ(static_cast<const char*>(h->root()), "root-data");
}

TEST(MakaluHeap, SmallAndLargePathsWork) {
  TempHeapPath path("mk_basic");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  void* small = h->alloc(64);    // < 400 B: thread-local path
  void* large = h->alloc(4000);  // >= 400 B: global chunk list
  ASSERT_NE(small, nullptr);
  ASSERT_NE(large, nullptr);
  std::memset(small, 1, 64);
  std::memset(large, 2, 4000);
  h->free(small);
  h->free(large);
}

TEST(MakaluHeap, ThreadLocalReuseIsLifo) {
  TempHeapPath path("mk_lifo");
  auto h = MakaluHeap::create(path.str(), 4 << 20);
  void* a = h->alloc(64);
  h->free(a);
  EXPECT_EQ(h->alloc(64), a) << "thread-local free list reuses immediately";
}

TEST(MakaluHeap, ReclaimListRedistributesAcrossThreads) {
  TempHeapPath path("mk_reclaim");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  // One thread frees far past the local threshold, pushing halves to the
  // global reclaim list...
  std::vector<void*> objs;
  for (std::size_t i = 0; i < 2 * MakaluHeap::kLocalMax; ++i) {
    objs.push_back(h->alloc(64));
  }
  for (void* p : objs) h->free(p);
  // ...and another thread must be able to consume them.
  std::set<void*> reused;
  std::thread t([&] {
    for (std::size_t i = 0; i < MakaluHeap::kReclaimBatch; ++i) {
      reused.insert(h->alloc(64));
    }
  });
  t.join();
  unsigned hits = 0;
  for (void* p : objs) hits += reused.count(p);
  EXPECT_GT(hits, 0u) << "reclaim list should feed other threads";
}

TEST(MakaluHeap, GcReclaimsUnreachable) {
  TempHeapPath path("mk_gc");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  char* root = static_cast<char*>(h->alloc(64));
  char* child = static_cast<char*>(h->alloc(64));
  char* leaked = static_cast<char*>(h->alloc(64));
  (void)leaked;
  *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(child);
  std::memset(root + 8, 0xff, 56);  // non-pointer noise
  *reinterpret_cast<std::uint64_t*>(child) = ~0ull;
  h->set_root(root);
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 2u);
  EXPECT_EQ(st.swept, 1u);
}

TEST(MakaluHeap, GcHonoursInteriorReferences) {
  TempHeapPath path("mk_interior");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  char* root = static_cast<char*>(h->alloc(64));
  char* obj = static_cast<char*>(h->alloc(256));
  // Reference points into the middle of obj: conservative GC keeps it.
  *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(obj) + 100;
  h->set_root(root);
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 2u);
  EXPECT_EQ(st.swept, 0u);
}

TEST(MakaluHeap, GcLosesObjectsBehindCorruptedPointer) {
  // The paper's §2.2/§9 criticism of reachability-based recovery: corrupt
  // one pointer and everything behind it is swept away.
  TempHeapPath path("mk_corrupt");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  char* root = static_cast<char*>(h->alloc(64));
  char* a = static_cast<char*>(h->alloc(64));
  char* b = static_cast<char*>(h->alloc(64));
  *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(a);
  *reinterpret_cast<std::uint64_t*>(a) = h->data_offset_of(b);
  *reinterpret_cast<std::uint64_t*>(b) = ~0ull;
  h->set_root(root);
  *reinterpret_cast<std::uint64_t*>(root) = ~0ull;  // heap overwrite bug
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 1u);
  EXPECT_EQ(st.swept, 2u) << "a and b silently reclaimed while still in use";
}

TEST(MakaluHeap, GcSweepMakesSpaceReusable) {
  TempHeapPath path("mk_reuse");
  auto h = MakaluHeap::create(path.str(), 2 << 20);
  // Leak the whole heap with large objects.
  std::size_t leaked = 0;
  for (;;) {
    if (h->alloc(100 * 1024) == nullptr) break;
    ++leaked;
  }
  ASSERT_GT(leaked, 0u);
  EXPECT_EQ(h->alloc(100 * 1024), nullptr);
  h->set_root(nullptr);
  const auto st = h->collect();
  EXPECT_EQ(st.swept, leaked);
  EXPECT_NE(h->alloc(100 * 1024), nullptr) << "swept space is reusable";
}

TEST(MakaluHeap, ChurnAcrossSizeBoundary) {
  TempHeapPath path("mk_churn");
  auto h = MakaluHeap::create(path.str(), 16 << 20);
  Xoshiro256 rng(9);
  std::vector<void*> live;
  for (int i = 0; i < 4000; ++i) {
    if (live.size() < 300 && (live.empty() || (rng.next() & 1))) {
      // Sizes straddling the 400-byte threshold.
      const std::size_t sz = 350 + rng.next_below(100);
      void* p = h->alloc(sz);
      if (p != nullptr) live.push_back(p);
    } else {
      const std::size_t k = rng.next_below(live.size());
      h->free(live[k]);
      live[k] = live.back();
      live.pop_back();
    }
  }
  for (void* p : live) h->free(p);
}

}  // namespace
}  // namespace poseidon::baselines
