// Workload-generator tests: kernel correctness (known answers), zipfian
// distribution shape, the measurement harness, and end-to-end mini runs
// of Larson and YCSB over every allocator.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "alloc_iface/allocator.hpp"
#include "common/rng.hpp"
#include "workloads/harness.hpp"
#include "workloads/kernels.hpp"
#include "workloads/larson.hpp"
#include "workloads/ycsb.hpp"
#include "workloads/zipf.hpp"

namespace poseidon::workloads {
namespace {

TEST(Kernels, NQueensKnownAnswers) {
  unsigned char board[16];
  EXPECT_EQ(nqueens_solve(board, 4), 2u);
  EXPECT_EQ(nqueens_solve(board, 5), 10u);
  EXPECT_EQ(nqueens_solve(board, 6), 4u);
  EXPECT_EQ(nqueens_solve(board, 8), 92u);  // the paper's board size
}

TEST(Kernels, KruskalSpanningTreeProperties) {
  // MST weight of a connected graph is positive, deterministic for a
  // seed, and invariant across repeated runs on fresh buffers.
  alignas(8) unsigned char edges[kKruskalBufBytes];
  alignas(8) unsigned char uf[kKruskalBufBytes];
  alignas(8) unsigned char out[kKruskalBufBytes];
  const std::uint64_t w1 = kruskal_mst(edges, uf, out, 5, 42);
  const std::uint64_t w2 = kruskal_mst(edges, uf, out, 5, 42);
  EXPECT_EQ(w1, w2);
  EXPECT_GT(w1, 0u);
  const std::uint64_t w3 = kruskal_mst(edges, uf, out, 5, 43);
  EXPECT_NE(w1, w3) << "different seed, different graph";
  // An MST of order n has n-1 edges; weight bounded by (n-1)*max_weight.
  EXPECT_LE(w1, 4u * 1000u);
}

TEST(Kernels, KruskalMstIsMinimal) {
  // Brute-force check on order 5: no spanning tree is lighter.  Rebuild
  // the same graph, enumerate all 125 labelled spanning trees via
  // edge-subset enumeration (10 choose 4 = 210 subsets).
  alignas(8) unsigned char bufs[3][kKruskalBufBytes];
  const std::uint64_t mst = kruskal_mst(bufs[0], bufs[1], bufs[2], 5, 7);
  // Regenerate edges exactly as the kernel does.
  Xoshiro256 rng(7);
  struct E { std::uint32_t w; unsigned u, v; };
  std::vector<E> edges;
  for (unsigned u = 0; u < 5; ++u) {
    for (unsigned v = u + 1; v < 5; ++v) {
      edges.push_back({static_cast<std::uint32_t>(rng.next_below(1000) + 1), u, v});
    }
  }
  std::uint64_t best = ~0ull;
  for (unsigned mask = 0; mask < (1u << 10); ++mask) {
    if (__builtin_popcount(mask) != 4) continue;
    unsigned parent[5] = {0, 1, 2, 3, 4};
    auto find = [&](unsigned x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    std::uint64_t w = 0;
    unsigned joined = 0;
    for (unsigned i = 0; i < 10; ++i) {
      if (!(mask & (1u << i))) continue;
      const unsigned ru = find(edges[i].u), rv = find(edges[i].v);
      w += edges[i].w;
      if (ru != rv) {
        parent[ru] = rv;
        ++joined;
      }
    }
    if (joined == 4 && w < best) best = w;
  }
  EXPECT_EQ(mst, best);
}

TEST(Kernels, AckermannFillsDeterministically) {
  std::vector<std::uint64_t> buf(4096);
  const std::uint64_t c1 = ackermann_fill(buf.data(), buf.size() * 8);
  std::vector<std::uint64_t> buf2(4096);
  const std::uint64_t c2 = ackermann_fill(buf2.data(), buf2.size() * 8);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(buf, buf2);
  // Spot-check real Ackermann values: A(1,n)=n+2, A(2,n)=2n+3, A(3,n)=2^(n+3)-3.
  const std::size_t cols = buf.size() / 4;
  EXPECT_EQ(buf[0 * cols + 5], 6u);    // A(0,5)
  EXPECT_EQ(buf[1 * cols + 5], 7u);    // A(1,5)
  EXPECT_EQ(buf[2 * cols + 5], 13u);   // A(2,5)
  EXPECT_EQ(buf[3 * cols + 5], 253u);  // A(3,5)
}

TEST(Zipf, RanksAreBoundedAndSkewed) {
  ZipfGenerator zipf(1000, 0.99, 42);
  std::vector<unsigned> hist(1000, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const auto r = zipf.next_rank();
    ASSERT_LT(r, 1000u);
    ++hist[r];
  }
  // Rank 0 is by far the hottest; the head dominates the tail.
  EXPECT_GT(hist[0], hist[10]);
  EXPECT_GT(hist[0], kDraws / 20);
  unsigned head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) head += hist[i];
  for (int i = 990; i < 1000; ++i) tail += hist[i];
  EXPECT_GT(head, 10 * tail);
}

TEST(Zipf, ScrambledCoversKeySpace) {
  ZipfGenerator zipf(1000, 0.99, 7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50000; ++i) {
    const auto k = zipf.next_scrambled();
    ASSERT_LT(k, 1000u);
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 300u) << "scrambling should spread hot ranks";
}

TEST(Harness, ParallelAggregatesAllThreads) {
  const RunResult r = run_parallel(4, [](unsigned tid) -> std::uint64_t {
    return (tid + 1) * 100;
  });
  EXPECT_EQ(r.ops, 100u + 200 + 300 + 400);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(Harness, TimedStopsThreads) {
  const RunResult r = run_timed(
      2, 0.05, [](unsigned, const std::atomic<bool>& stop) -> std::uint64_t {
        std::uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) ++n;
        return n;
      });
  EXPECT_GT(r.ops, 0u);
  EXPECT_GE(r.seconds, 0.05);
  EXPECT_LT(r.seconds, 5.0);
}

TEST(Harness, SweepIsPowersOfTwoWithCap) {
  const auto sweep = default_thread_sweep();
  ASSERT_FALSE(sweep.empty());
  EXPECT_EQ(sweep.front(), 1u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GT(sweep[i], sweep[i - 1]);
  }
}

class WorkloadSmoke : public ::testing::TestWithParam<iface::AllocatorKind> {};

TEST_P(WorkloadSmoke, LarsonRunsAndBalances) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 32ull << 20;
  cfg.nlanes = 2;
  auto alloc = iface::make_allocator(GetParam(), cfg);
  LarsonConfig lc;
  lc.nthreads = 2;
  lc.seconds = 0.05;
  const LarsonResult r = run_larson(*alloc, lc);
  EXPECT_GT(r.ops, 0u);
  EXPECT_GT(r.ops_per_sec(), 0.0);
}

TEST_P(WorkloadSmoke, YcsbLoadAndWorkloadA) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  cfg.nlanes = 2;
  auto alloc = iface::make_allocator(GetParam(), cfg);
  YcsbConfig yc;
  yc.nkeys = 5000;
  yc.nthreads = 2;
  yc.seconds = 0.05;
  const YcsbResult r = run_ycsb(*alloc, yc);
  EXPECT_GT(r.load_mops, 0.0);
  EXPECT_GT(r.a_mops, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Allocators, WorkloadSmoke,
                         ::testing::Values(iface::AllocatorKind::kPoseidon,
                                           iface::AllocatorKind::kPmdkLike,
                                           iface::AllocatorKind::kMakaluLike),
                         [](const auto& info) {
                           std::string n = iface::kind_name(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace poseidon::workloads
