// Tests for the paper's §8 hardening directions:
//   * the PMDK canary mitigation (skip frees with corrupted in-place
//     headers so the corruption does not propagate);
//   * WRPKRU/XRSTOR binary inspection (the Hodor/ERIM-style countermeasure
//     against malicious MPK use);
//   * Poseidon's mechanism introspection counters.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "core/heap.hpp"
#include "mpk/wrpkru_scan.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using test::small_opts;
using test::TempHeapPath;

TEST(Canary, CleanFreesPassTheCheck) {
  TempHeapPath path("canary_clean");
  auto h = baselines::PmdkHeap::create(path.str(), 8 << 20, /*canary=*/true);
  EXPECT_TRUE(h->canary_enabled());
  std::vector<void*> ps;
  for (int i = 0; i < 200; ++i) ps.push_back(h->alloc(48 + (i % 5) * 100));
  for (void* p : ps) h->free(p);
  EXPECT_EQ(h->canary_rejected_frees(), 0u);
  // Space is reusable: nothing was leaked by the mitigation.
  for (int i = 0; i < 200; ++i) ASSERT_NE(h->alloc(48), nullptr);
}

TEST(Canary, CorruptedHeaderFreeIsSkipped) {
  TempHeapPath path("canary_skip");
  auto h = baselines::PmdkHeap::create(path.str(), 4 << 20, /*canary=*/true);
  void* victim = h->alloc(48);
  ASSERT_NE(victim, nullptr);
  // The Fig. 3 attack: overwrite the in-place size.
  *reinterpret_cast<std::uint64_t*>(static_cast<char*>(victim) - 16) = 1088;
  h->free(victim);
  EXPECT_EQ(h->canary_rejected_frees(), 1u)
      << "mitigation must skip the corrupted free";
}

TEST(Canary, StopsTheOverlappingAllocationExploit) {
  // Replay the full Fig. 3 overlap exploit against the hardened build: no
  // extra bitmap bits get cleared, so no overlapping allocations occur.
  TempHeapPath path("canary_overlap");
  auto h = baselines::PmdkHeap::create(path.str(), 4 << 20, /*canary=*/true);
  std::vector<void*> objs;
  for (;;) {
    void* p = h->alloc(48);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  void* victim = objs[objs.size() / 2];
  *reinterpret_cast<std::uint64_t*>(static_cast<char*>(victim) - 16) = 1088;
  h->free(victim);

  unsigned reallocated = 0;
  for (;;) {
    void* p = h->alloc(48);
    if (p == nullptr) break;
    ++reallocated;
  }
  EXPECT_EQ(reallocated, 0u)
      << "the corrupted free was skipped, so the heap stays full (the "
         "object leaks — the paper is explicit the mitigation cannot "
         "prevent leaks, only propagation)";
  EXPECT_EQ(h->canary_rejected_frees(), 1u);
}

TEST(Canary, DisabledByDefaultKeepsVulnerability) {
  TempHeapPath path("canary_off");
  auto h = baselines::PmdkHeap::create(path.str(), 4 << 20);
  EXPECT_FALSE(h->canary_enabled());
  void* victim = h->alloc(48);
  *reinterpret_cast<std::uint64_t*>(static_cast<char*>(victim) - 16) = 1088;
  h->free(victim);
  EXPECT_EQ(h->canary_rejected_frees(), 0u) << "no check without the flag";
}

TEST(Canary, FlagPersistsAcrossReopen) {
  TempHeapPath path("canary_reopen");
  {
    auto h = baselines::PmdkHeap::create(path.str(), 4 << 20, /*canary=*/true);
    (void)h;
  }
  auto h = baselines::PmdkHeap::open(path.str());
  EXPECT_TRUE(h->canary_enabled());
}

// A never-executed function body carrying the exact WRPKRU and XRSTOR
// encodings, so the text-segment scan has a guaranteed hit.
[[gnu::used, gnu::noinline]] void gadget_carrier() {
  asm volatile(
      "jmp 1f\n\t"
      "wrpkru\n\t"          // 0f 01 ef
      "xrstor (%%rax)\n\t"  // 0f ae 28
      "1:\n\t" ::: "memory");
}

TEST(WrpkruScan, FindsEncodingsInBuffer) {
  const unsigned char buf[] = {0x90, 0x0f, 0x01, 0xef,  // wrpkru
                               0x48, 0x0f, 0xae, 0x2f,  // xrstor (%rdi)
                               0x0f, 0x01, 0xee,        // not wrpkru
                               0x0f, 0xae, 0xe8};       // 0F AE /5 reg form
  const auto hits = mpk::scan_range(buf, sizeof(buf));
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].kind, mpk::GadgetKind::kWrpkru);
  EXPECT_EQ(hits[0].addr, reinterpret_cast<std::uintptr_t>(buf) + 1);
  EXPECT_EQ(hits[1].kind, mpk::GadgetKind::kXrstor);
  EXPECT_EQ(hits[2].kind, mpk::GadgetKind::kXrstor);
}

TEST(WrpkruScan, EmptyAndTinyRanges) {
  const unsigned char buf[] = {0x0f, 0x01};
  EXPECT_TRUE(mpk::scan_range(buf, 0).empty());
  EXPECT_TRUE(mpk::scan_range(buf, 2).empty());
}

TEST(WrpkruScan, FindsGadgetInOwnText) {
  gadget_carrier();  // keep the symbol alive
  const auto hits = mpk::scan_executable_mappings();
  const auto target = reinterpret_cast<std::uintptr_t>(&gadget_carrier);
  bool found = false;
  for (const auto& h : hits) {
    if (h.kind == mpk::GadgetKind::kWrpkru && h.addr >= target &&
        h.addr < target + 64) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "scanner must locate the planted wrpkru";
}

TEST(WrpkruScan, AllowListVerdict) {
  const auto target = reinterpret_cast<std::uintptr_t>(&gadget_carrier);
  std::vector<mpk::GadgetHit> offenders;
  // Nothing allowed: the planted gadget (at least) offends.
  EXPECT_FALSE(mpk::only_allowed_gadgets({}, &offenders));
  EXPECT_FALSE(offenders.empty());
  // Allow everything: trivially clean.
  EXPECT_TRUE(mpk::only_allowed_gadgets({{0, ~std::uintptr_t{0}}}));
  (void)target;
}

TEST(MechanismCounters, SplitsAndMergesAreObservable) {
  TempHeapPath path("counters");
  auto h = core::Heap::create(path.str(), 1 << 20, small_opts());
  EXPECT_EQ(h->stats().splits, 0u);
  core::NvPtr p = h->alloc(64);  // splits from the top class down to 64 B
  const auto after_alloc = h->stats();
  EXPECT_GT(after_alloc.splits, 5u);
  EXPECT_EQ(after_alloc.merges, 0u);
  h->free(p);
  // Request the whole region: forces defragmentation merges.
  core::NvPtr whole = h->alloc(h->user_capacity());
  ASSERT_FALSE(whole.is_null());
  const auto after_merge = h->stats();
  EXPECT_EQ(after_merge.merges, after_alloc.splits)
      << "every split must be undone by exactly one merge";
}

TEST(MechanismCounters, HashExtensionAndShrinkObservable) {
  TempHeapPath path("counters_hash");
  core::Options o = small_opts();
  o.level0_slots = 256;  // tiny level 0 so extensions trigger quickly
  auto h = core::Heap::create(path.str(), 4 << 20, o);
  std::vector<core::NvPtr> ps;
  for (int i = 0; i < 20000; ++i) {
    core::NvPtr p = h->alloc(32);
    if (p.is_null()) break;
    ps.push_back(p);
  }
  const auto grown = h->stats();
  EXPECT_GT(grown.hash_extensions, 0u);
  for (const auto& p : ps) ASSERT_EQ(h->free(p), core::FreeResult::kOk);
  core::NvPtr whole = h->alloc(h->user_capacity());
  ASSERT_FALSE(whole.is_null());
  const auto merged = h->stats();
  EXPECT_GT(merged.hash_shrinks, 0u)
      << "merging everything away must let the top levels be punched";
}

}  // namespace
}  // namespace poseidon
