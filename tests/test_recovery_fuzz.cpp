// Crash-recovery fuzzing: many rounds of {random operation burst, crash at
// a random point with random cache-line survival, recover, audit}.  Unlike
// the deterministic sweep in test_recovery.cpp, each round continues from
// the previous round's recovered heap, so corruption that survives one
// recovery is caught by a later audit — the heap lives through dozens of
// consecutive power failures.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/heap.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/sim_domain.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

class CrashFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CrashFuzz, SurvivesConsecutivePowerFailures) {
  const std::uint64_t seed = GetParam();
  Xoshiro256 rng(seed);
  TempHeapPath path("fuzz");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  { auto h = Heap::create(path.str(), 2 << 20, o); }

  // Blocks known to be committed (allocated and op returned) — after any
  // crash these must still free exactly once.
  std::vector<NvPtr> committed;

  // POSEIDON_FUZZ_MULT scales the round count for long-running CI jobs
  // (e.g. the nightly fault-injection sweep runs 5x).
  int mult = 1;
  if (const char* env = std::getenv("POSEIDON_FUZZ_MULT")) {
    const int v = std::atoi(env);
    if (v > 0) mult = v;
  }
  for (int round = 0; round < 60 * mult; ++round) {
    auto h = Heap::open(path.str(), o);
    std::string why;
    ASSERT_TRUE(h->check_invariants(&why))
        << "seed " << seed << " round " << round << ": " << why;

    // Reconcile: every committed block must still be live; free half.
    for (std::size_t i = 0; i < committed.size();) {
      NvPtr p{h->heap_id(), committed[i].packed};
      if (rng.next() & 1) {
        ASSERT_EQ(h->free(p), FreeResult::kOk)
            << "seed " << seed << " round " << round;
        committed[i] = committed.back();
        committed.pop_back();
      } else {
        ++i;
      }
    }

    auto [meta, len] = h->metadata_region();
    pmem::SimDomain sim(meta, len);
    sim.checkpoint();
    const std::uint64_t crash_at = 1 + rng.next_below(40);
    pmem::crash_arm("", crash_at, pmem::CrashAction::kThrow);
    bool crashed = false;
    try {
      for (int op = 0; op < 25; ++op) {
        const std::uint64_t sz = 32u << rng.next_below(8);
        if (rng.next_below(10) < 6 || committed.empty()) {
          NvPtr p = h->alloc(sz);
          if (!p.is_null()) committed.push_back(p);
        } else if (rng.next_below(10) < 8) {
          const std::size_t k = rng.next_below(committed.size());
          if (h->free(committed[k]) == FreeResult::kOk) {
            committed[k] = committed.back();
            committed.pop_back();
          }
        } else {
          NvPtr t1 = h->tx_alloc(sz, false);
          NvPtr t2 = h->tx_alloc(sz, true);
          if (!t1.is_null()) committed.push_back(t1);
          if (!t2.is_null()) committed.push_back(t2);
        }
      }
    } catch (const pmem::CrashException&) {
      crashed = true;
      // Allocations whose op was cut short are NOT committed; drop any
      // that recovery may roll back — conservatively, trust only blocks
      // from before this burst.  Simplest correct rule: revalidate below.
    }
    pmem::crash_disarm();
    if (crashed) {
      sim.crash(seed * 131 + round, rng.next_double());
      // The burst's allocations are in limbo (committed or rolled back);
      // drop our claims on anything recovery may have reverted: keep only
      // blocks that are still allocated after reopen, detected by freeing
      // and re-allocating in the reconcile step of the next round.
    }
    // Any block recorded during a crashed burst might have been rolled
    // back; purge entries the next reconcile would wrongly free by
    // validating against a fresh open below.
    h.reset();
    if (crashed) {
      auto check = Heap::open(path.str(), o);
      std::vector<NvPtr> still;
      for (const NvPtr& p : committed) {
        // A committed block frees exactly once; re-allocate immediately to
        // keep it live for the next round.
        NvPtr q{check->heap_id(), p.packed};
        void* raw = check->raw(q);
        if (raw == nullptr) continue;
        still.push_back(q);
      }
      committed = std::move(still);
      // Weed out rolled-back blocks: free everything; those that reject
      // were never (or no longer) allocated.
      std::vector<NvPtr> live;
      for (const NvPtr& p : committed) {
        if (check->free(p) == FreeResult::kOk) {
          NvPtr np = check->alloc(32);
          if (!np.is_null()) live.push_back(np);
        }
      }
      committed = std::move(live);
      ASSERT_TRUE(check->check_invariants(&why)) << why;
    }
  }

  // Final audit: drain.  Crashes can orphan committed allocations whose
  // pointer never reached the caller (the singleton-allocation leak the
  // paper's tx_alloc exists to close), so enumerate live blocks instead
  // of trusting our committed list alone.
  auto h = Heap::open(path.str(), o);
  for (const NvPtr& p : committed) {
    ASSERT_EQ(h->free(NvPtr{h->heap_id(), p.packed}), FreeResult::kOk);
  }
  std::vector<NvPtr> orphans;
  h->visit_blocks([&](unsigned sub, std::uint64_t off, std::uint32_t,
                      std::uint32_t status) {
    if (status == kBlockAllocated) {
      orphans.push_back(
          NvPtr::make(h->heap_id(), static_cast<std::uint16_t>(sub), off));
    }
  });
  for (const NvPtr& p : orphans) {
    ASSERT_EQ(h->free(p), FreeResult::kOk) << "orphan audit";
  }
  EXPECT_EQ(h->stats().live_blocks, 0u);
  NvPtr whole = h->alloc(h->user_capacity() / h->nsubheaps());
  EXPECT_FALSE(whole.is_null());
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz,
                         ::testing::Values(11, 23, 37, 59, 71, 97));

}  // namespace
}  // namespace poseidon::core
