// Sub-heap engine tests: buddy allocation, splitting, merging, validated
// frees, defragmentation, counters and the structural invariant checker.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "core/subheap.hpp"

namespace poseidon::core {
namespace {

constexpr std::uint64_t kUserSize = 1 << 20;  // 1 MiB sub-heap

struct SubheapFixture : ::testing::Test {
  void SetUp() override {
    geo = compute_geometry(/*nsubheaps=*/1, kUserSize, /*level0=*/256);
    buf = static_cast<std::byte*>(::aligned_alloc(kPageSize, geo.file_size));
    std::memset(buf, 0, geo.file_size);
    meta = reinterpret_cast<SubheapMeta*>(buf + geo.subheap_meta_off);
    Subheap::format(meta, buf, geo, /*index=*/0, /*cpu=*/0);
    sh = std::make_unique<Subheap>(meta, buf, nullptr, /*undo=*/true);
  }
  void TearDown() override { ::free(buf); }

  void expect_invariants() {
    std::string why;
    ASSERT_TRUE(sh->check_invariants(&why)) << why;
  }

  Geometry geo{};
  std::byte* buf = nullptr;
  SubheapMeta* meta = nullptr;
  std::unique_ptr<Subheap> sh;
};

TEST_F(SubheapFixture, FreshHeapIsOneFreeBlock) {
  EXPECT_EQ(meta->free_blocks, 1u);
  EXPECT_EQ(meta->live_blocks, 0u);
  EXPECT_EQ(sh->free_bytes(), kUserSize);
  EXPECT_EQ(sh->largest_free_class(), log2_floor(kUserSize));
  expect_invariants();
}

TEST_F(SubheapFixture, AllocSplitsDownToRequestedClass) {
  const auto off = sh->alloc(100);  // class 7 (128 B)
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off % 128, 0u);
  // Splitting 2^20 -> 2^7 creates one free buddy per level: 13 of them.
  EXPECT_EQ(meta->free_blocks, 13u);
  EXPECT_EQ(meta->live_blocks, 1u);
  EXPECT_EQ(meta->allocated_bytes, 128u);
  expect_invariants();
}

TEST_F(SubheapFixture, MinimumClassIs32Bytes) {
  const auto off = sh->alloc(1);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(meta->allocated_bytes, 32u);
}

TEST_F(SubheapFixture, WholeRegionAllocatable) {
  const auto off = sh->alloc(kUserSize);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(*off, 0u);
  EXPECT_EQ(meta->free_blocks, 0u);
  EXPECT_FALSE(sh->alloc(32).has_value());  // nothing left
  expect_invariants();
}

TEST_F(SubheapFixture, RejectsZeroAndOversized) {
  EXPECT_FALSE(sh->alloc(0).has_value());
  EXPECT_FALSE(sh->alloc(kUserSize + 1).has_value());
}

TEST_F(SubheapFixture, FreeRoundTrip) {
  const auto off = sh->alloc(4096);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(sh->free_block(*off), FreeResult::kOk);
  EXPECT_EQ(meta->live_blocks, 0u);
  expect_invariants();
}

TEST_F(SubheapFixture, DoubleFreeDetected) {
  const auto off = sh->alloc(64);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(sh->free_block(*off), FreeResult::kOk);
  EXPECT_EQ(sh->free_block(*off), FreeResult::kDoubleFree);
  expect_invariants();
}

TEST_F(SubheapFixture, InvalidFreeDetected) {
  const auto off = sh->alloc(64);
  ASSERT_TRUE(off.has_value());
  // 32-aligned but strictly interior to a block (the buddy layout after
  // one 64-byte allocation is blocks at 0, 64, 128, 256, ...; offset 96
  // lies inside the free block at 64).
  EXPECT_EQ(sh->free_block(*off + 96), FreeResult::kInvalidFree);
  expect_invariants();
}

TEST_F(SubheapFixture, MisalignedAndOutOfRangeFreeDetected) {
  EXPECT_EQ(sh->free_block(17), FreeResult::kInvalidPointer);
  EXPECT_EQ(sh->free_block(kUserSize), FreeResult::kInvalidPointer);
  EXPECT_EQ(sh->free_block(kUserSize + 64), FreeResult::kInvalidPointer);
}

TEST_F(SubheapFixture, FreedBlocksGoToListTail) {
  // Paper §5.5: tail insertion delays reuse, so allocations come back in
  // the order blocks were freed (FIFO).
  const auto a = sh->alloc(64);
  const auto b = sh->alloc(64);
  const auto c = sh->alloc(64);
  ASSERT_TRUE(a && b && c);
  sh->free_block(*b);
  sh->free_block(*c);
  sh->free_block(*a);
  // Allocation pops from the head; frees append at the tail, so b, c and
  // a reappear in exactly that order (a split remainder that predates the
  // frees may pop first).
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(*sh->alloc(64));
  std::vector<std::uint64_t> ours;
  for (const auto off : order) {
    if (off == *a || off == *b || off == *c) ours.push_back(off);
  }
  EXPECT_EQ(ours, (std::vector<std::uint64_t>{*b, *c, *a}));
  expect_invariants();
}

TEST_F(SubheapFixture, DefragMergesBuddiesForLargeRequest) {
  // Fill with small blocks, free them all, then ask for the whole region:
  // only buddy merging can satisfy it.
  std::vector<std::uint64_t> offs;
  for (;;) {
    const auto off = sh->alloc(32);
    if (!off) break;
    offs.push_back(*off);
  }
  EXPECT_EQ(offs.size(), kUserSize / 32);
  for (const auto off : offs) {
    ASSERT_EQ(sh->free_block(off), FreeResult::kOk);
  }
  expect_invariants();
  const auto whole = sh->alloc(kUserSize);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(*whole, 0u);
  EXPECT_EQ(meta->free_blocks, 0u);
  expect_invariants();
}

TEST_F(SubheapFixture, DefragOnlyRunsAsFarAsNeeded) {
  // Free two adjacent buddies and a distant block; asking for the doubled
  // class must merge without disturbing unrelated blocks.
  const auto a = sh->alloc(4096);
  const auto b = sh->alloc(4096);
  const auto c = sh->alloc(4096);
  const auto keep = sh->alloc(4096);
  ASSERT_TRUE(a && b && c && keep);
  // Exhaust all remaining 8K+ blocks so only merging can serve 8K.
  std::vector<std::uint64_t> fill;
  for (;;) {
    const auto off = sh->alloc(4096);
    if (!off) break;
    fill.push_back(*off);
  }
  sh->free_block(*a);
  sh->free_block(*b);
  sh->free_block(*c);
  const auto big = sh->alloc(8192);
  ASSERT_TRUE(big.has_value());
  expect_invariants();
  for (const auto off : fill) sh->free_block(off);
  expect_invariants();
}

TEST_F(SubheapFixture, CountersStayBalanced) {
  Xoshiro256 rng(11);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> live;  // off, size
  std::uint64_t expect_bytes = 0;
  for (int i = 0; i < 2000; ++i) {
    if (live.empty() || (rng.next() & 1)) {
      const std::uint64_t sz = 32u << rng.next_below(6);
      const auto off = sh->alloc(sz);
      if (off) {
        live.emplace_back(*off, sz);
        expect_bytes += sz;
      }
    } else {
      const std::size_t k = rng.next_below(live.size());
      ASSERT_EQ(sh->free_block(live[k].first), FreeResult::kOk);
      expect_bytes -= live[k].second;
      live[k] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(meta->live_blocks, live.size());
  EXPECT_EQ(meta->allocated_bytes, expect_bytes);
  expect_invariants();
}

TEST_F(SubheapFixture, TxHookAppendsMicroLog) {
  TxHook hook{true, /*heap_id=*/77, /*subheap=*/0};
  const auto off = sh->alloc(64, hook);
  ASSERT_TRUE(off.has_value());
  ASSERT_EQ(micro_count(sh->micro()), 1u);
  EXPECT_EQ(sh->micro().entries[0], NvPtr::make(77, 0, *off));
  const auto off2 = sh->alloc(128, hook);
  ASSERT_TRUE(off2.has_value());
  EXPECT_EQ(micro_count(sh->micro()), 2u);
  micro_truncate(sh->micro());
  EXPECT_EQ(micro_count(sh->micro()), 0u);
}

TEST_F(SubheapFixture, SingletonAllocLeavesMicroLogAlone) {
  (void)sh->alloc(64);
  EXPECT_EQ(micro_count(sh->micro()), 0u);
}

TEST_F(SubheapFixture, UndoDisabledModeStillWorks) {
  Subheap unsafe(meta, buf, nullptr, /*undo=*/false);
  const auto off = unsafe.alloc(256);
  ASSERT_TRUE(off.has_value());
  EXPECT_EQ(unsafe.free_block(*off), FreeResult::kOk);
  expect_invariants();
}

TEST_F(SubheapFixture, CappedTableTriggersWindowMergesWithoutDrift) {
  // Regression test: cap the hash table at one level so insert pressure is
  // permanent.  Splits then exercise the paper's §5.4 case 2 (merge free
  // buddy pairs whose records sit in the probed windows), and failed
  // splits roll back *through* those merges — which once leaked a
  // free_blocks counter decrement (the merge ran inside an op that later
  // aborted while counters were unlogged).
  meta->levels_max = 1;  // 256 slots for up to 32 Ki records
  Xoshiro256 rng(3);
  std::vector<std::pair<std::uint64_t, unsigned>> live;
  unsigned ooms = 0;
  for (int i = 0; i < 60000; ++i) {
    if (live.size() < 200 && (live.empty() || (rng.next() & 1))) {
      const unsigned cls = static_cast<unsigned>(rng.next_below(4));
      const auto off = sh->alloc(32u << cls);
      if (off) {
        live.emplace_back(*off, cls);
      } else {
        ++ooms;  // hash-table-full OOM is legal under the cap
      }
    } else {
      const std::size_t k = rng.next_below(live.size());
      ASSERT_EQ(sh->free_block(live[k].first), FreeResult::kOk);
      live[k] = live.back();
      live.pop_back();
    }
    if (i % 10000 == 0) expect_invariants();
  }
  expect_invariants();
  EXPECT_GT(meta->stat_window_merges, 0u)
      << "insert pressure must exercise the window-merge path";
  EXPECT_GT(ooms, 0u) << "the cap must actually bite";
  for (const auto& [off, cls] : live) {
    ASSERT_EQ(sh->free_block(off), FreeResult::kOk);
  }
  expect_invariants();
}

// Size-class sweep: every size in a wide range allocates a correctly
// aligned power-of-two block and frees cleanly.
class SubheapSizeSweep : public SubheapFixture,
                         public ::testing::WithParamInterface<std::uint64_t> {
};

TEST_P(SubheapSizeSweep, AllocAlignedAndFreeable) {
  const std::uint64_t size = GetParam();
  const auto off = sh->alloc(size);
  ASSERT_TRUE(off.has_value());
  const std::uint64_t block = round_up_pow2(size < 32 ? 32 : size);
  EXPECT_EQ(*off % block, 0u) << "buddy alignment";
  EXPECT_EQ(meta->allocated_bytes, block);
  EXPECT_EQ(sh->free_block(*off), FreeResult::kOk);
  expect_invariants();
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubheapSizeSweep,
                         ::testing::Values(1, 31, 32, 33, 64, 100, 128, 255,
                                           256, 1000, 4096, 5000, 65536,
                                           100000, 1 << 19, 1 << 20));

}  // namespace
}  // namespace poseidon::core
