// The allocation service (src/svc): ring algorithms, shm segment
// lifecycle, server/client loopback, degraded modes, dead-client
// reclamation, and the cross-process linearizability property test.
//
// Child processes report through exit codes: gtest assertions do not
// cross fork().
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "alloc_iface/allocator.hpp"
#include "common/error.hpp"
#include "core/heap.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/shm.hpp"
#include "svc/client.hpp"
#include "svc/ring.hpp"
#include "svc/server.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using test::TempHeapPath;

// Two explicit shards regardless of the box's topology.
svc::ServerOptions two_shard_server() {
  svc::ServerOptions so;
  so.heap_opts.nshards = 2;
  so.heap_opts.nsubheaps = 4;
  so.heap_opts.protect = mpk::ProtectMode::kNone;
  so.heap_opts.shard_policy = core::ShardPolicy::kPerThread;
  so.heap_opts.policy = core::SubheapPolicy::kPerThread;
  so.create_capacity = 32ull << 20;
  return so;
}

int reap(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {}
  return status;
}

// ---- ring algorithms (no server, plain memory) -----------------------------

struct SubRingBuf {
  std::vector<std::byte> mem;
  svc::SubRingHdr* hdr;
  SubRingBuf()
      : mem(sizeof(svc::SubRingHdr) +
            svc::kSubRingSlots * sizeof(svc::ReqSlot) + 128) {
    auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
    addr = (addr + 127) & ~std::uintptr_t{127};
    hdr = reinterpret_cast<svc::SubRingHdr*>(addr);
    svc::sub_ring_init(hdr);
  }
};

TEST(SvcRing, SubClaimPublishPoll) {
  SubRingBuf rb;
  EXPECT_EQ(svc::sub_depth(rb.hdr), 0u);

  svc::ReqSlot* slot = svc::sub_claim(rb.hdr, /*session=*/5);
  ASSERT_NE(slot, nullptr);
  slot->req_id = 42;
  slot->op = static_cast<std::uint16_t>(svc::SvcOp::kPing);
  slot->nops = 0;
  svc::sub_publish(rb.hdr, slot, 5);
  EXPECT_EQ(svc::sub_depth(rb.hdr), 1u);

  svc::SubReq req{};
  std::uint32_t claimant = 0;
  ASSERT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kGot);
  EXPECT_EQ(req.session, 5u);
  EXPECT_EQ(req.req_id, 42u);
  EXPECT_EQ(req.op, svc::SvcOp::kPing);
  EXPECT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kEmpty);
  EXPECT_EQ(svc::sub_depth(rb.hdr), 0u);
}

TEST(SvcRing, SubFullRingBackpressureAndFifoDrain) {
  SubRingBuf rb;
  for (unsigned i = 0; i < svc::kSubRingSlots; ++i) {
    svc::ReqSlot* slot = svc::sub_claim(rb.hdr, 1);
    ASSERT_NE(slot, nullptr) << "slot " << i;
    slot->req_id = i;
    slot->op = static_cast<std::uint16_t>(svc::SvcOp::kPing);
    slot->nops = 0;
    svc::sub_publish(rb.hdr, slot, 1);
  }
  // Full: the next claim must refuse rather than overwrite.
  EXPECT_EQ(svc::sub_claim(rb.hdr, 1), nullptr);

  svc::SubReq req{};
  std::uint32_t claimant = 0;
  for (unsigned i = 0; i < svc::kSubRingSlots; ++i) {
    ASSERT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kGot);
    EXPECT_EQ(req.req_id, i);  // strict position order
  }
  EXPECT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kEmpty);
  // Recycled: a full lap later the ring accepts claims again.
  EXPECT_NE(svc::sub_claim(rb.hdr, 1), nullptr);
}

TEST(SvcRing, SubAbandonedClaimReportsClaimantAndDiscards) {
  SubRingBuf rb;
  // A producer claims the cursor slot and "dies" before publishing.
  ASSERT_NE(svc::sub_claim(rb.hdr, /*session=*/7), nullptr);
  // A healthy producer publishes behind the wedge.
  svc::ReqSlot* ok = svc::sub_claim(rb.hdr, /*session=*/3);
  ASSERT_NE(ok, nullptr);
  ok->req_id = 9;
  ok->op = static_cast<std::uint16_t>(svc::SvcOp::kPing);
  ok->nops = 0;
  svc::sub_publish(rb.hdr, ok, 3);

  // The consumer must block on the wedge and name the claimant — the
  // server resolves that session to a dead pid and discards.
  svc::SubReq req{};
  std::uint32_t claimant = 0;
  ASSERT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kClaimWait);
  EXPECT_EQ(claimant, 7u);
  svc::sub_discard(rb.hdr);
  ASSERT_EQ(svc::sub_poll(rb.hdr, &req, &claimant), svc::SubPoll::kGot);
  EXPECT_EQ(req.session, 3u);
  EXPECT_EQ(req.req_id, 9u);
}

TEST(SvcRing, SubMpscThreadsFifoPerProducer) {
  SubRingBuf rb;
  constexpr unsigned kProducers = 4;
  constexpr unsigned kPerProducer = 200;
  std::vector<std::thread> producers;
  for (unsigned t = 0; t < kProducers; ++t) {
    producers.emplace_back([&rb, t] {
      for (unsigned i = 0; i < kPerProducer; ++i) {
        svc::ReqSlot* slot;
        while ((slot = svc::sub_claim(rb.hdr, t + 1)) == nullptr) {
          std::this_thread::yield();  // ring full: wait for the consumer
        }
        slot->req_id = i;
        slot->op = static_cast<std::uint16_t>(svc::SvcOp::kPing);
        slot->nops = 0;
        svc::sub_publish(rb.hdr, slot, t + 1);
      }
    });
  }
  unsigned got = 0;
  std::uint32_t next_per_session[kProducers + 1] = {};
  svc::SubReq req{};
  std::uint32_t claimant = 0;
  while (got < kProducers * kPerProducer) {
    switch (svc::sub_poll(rb.hdr, &req, &claimant)) {
      case svc::SubPoll::kGot:
        ASSERT_GE(req.session, 1u);
        ASSERT_LE(req.session, kProducers);
        // Per-producer FIFO: a producer publishes before its next claim.
        EXPECT_EQ(req.req_id, next_per_session[req.session]++);
        ++got;
        break;
      case svc::SubPoll::kClaimWait:  // live claimant, publish is imminent
      case svc::SubPoll::kEmpty:
        std::this_thread::yield();
        break;
    }
  }
  for (auto& p : producers) p.join();
  for (unsigned t = 1; t <= kProducers; ++t) {
    EXPECT_EQ(next_per_session[t], kPerProducer);
  }
}

TEST(SvcRing, CplRingFullAndFifo) {
  std::vector<std::byte> mem(sizeof(svc::SessionSlot) +
                             svc::kCplRingSlots * sizeof(svc::CplSlot) + 128);
  auto addr = reinterpret_cast<std::uintptr_t>(mem.data());
  addr = (addr + 127) & ~std::uintptr_t{127};
  auto* sess = reinterpret_cast<svc::SessionSlot*>(addr);
  auto* ring = reinterpret_cast<svc::CplSlot*>(sess + 1);
  svc::cpl_ring_init(sess, ring);

  svc::CplMsg msg{};
  for (unsigned i = 0; i < svc::kCplRingSlots; ++i) {
    msg.req_id = i;
    msg.status = svc::SvcStatus::kOk;
    ASSERT_TRUE(svc::cpl_enqueue(sess, ring, msg)) << "slot " << i;
  }
  EXPECT_FALSE(svc::cpl_enqueue(sess, ring, msg));  // full refuses
  EXPECT_EQ(svc::cpl_depth(sess), svc::kCplRingSlots);
  for (unsigned i = 0; i < svc::kCplRingSlots; ++i) {
    svc::CplMsg out{};
    ASSERT_TRUE(svc::cpl_dequeue(sess, ring, &out));
    EXPECT_EQ(out.req_id, i);
  }
  svc::CplMsg out{};
  EXPECT_FALSE(svc::cpl_dequeue(sess, ring, &out));  // empty
}

// ---- shm segment -----------------------------------------------------------

TEST(SvcShm, CreateAttachUnlink) {
  TempHeapPath path("svc_shm");
  const std::string seg_path = svc::svc_path(path.str());
  auto seg = pmem::ShmSegment::create(seg_path, 1 << 16);
  ASSERT_TRUE(seg.valid());
  EXPECT_EQ(seg.size(), std::size_t{1} << 16);
  std::memset(seg.data(), 0x5a, 64);

  // A second mapping of the same file sees the bytes (MAP_SHARED).
  auto ro = pmem::ShmSegment::attach(seg_path, /*read_only=*/true);
  ASSERT_TRUE(ro.valid());
  EXPECT_EQ(static_cast<unsigned char>(ro.data()[63]), 0x5au);

  // Creating over an existing segment must refuse (O_EXCL).
  EXPECT_THROW(pmem::ShmSegment::create(seg_path, 1 << 16), Error);

  EXPECT_TRUE(pmem::ShmSegment::exists(seg_path));
  pmem::ShmSegment::unlink(seg_path);
  EXPECT_FALSE(pmem::ShmSegment::exists(seg_path));
}

TEST(SvcShm, AttachMissingIsTypedUnavailable) {
  try {
    (void)pmem::ShmSegment::attach("/dev/shm/poseidon_no_such_segment.svc");
    FAIL() << "attach of a missing segment succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kSvcUnavailable);
  }
}

TEST(SvcShm, LifecycleSyscallsAreFaultInjectable) {
  TempHeapPath path("svc_shm_fault");
  const std::string seg_path = svc::svc_path(path.str());
  struct Case { pmem::fault::SysOp op; } cases[] = {
      {pmem::fault::SysOp::kOpen},
      {pmem::fault::SysOp::kFtruncate},
      {pmem::fault::SysOp::kMmap},
  };
  for (const auto& c : cases) {
    pmem::fault::arm_every(c.op, 1, EIO);
    EXPECT_THROW(pmem::ShmSegment::create(seg_path, 1 << 16), Error);
    pmem::fault::disarm_all();
    pmem::ShmSegment::unlink(seg_path);
  }
  // And with faults disarmed the same call succeeds.
  auto seg = pmem::ShmSegment::create(seg_path, 1 << 16);
  EXPECT_TRUE(seg.valid());
  pmem::ShmSegment::unlink(seg_path);
}

// ---- server/client loopback ------------------------------------------------

TEST(SvcServerClient, LoopbackAllocFreeTxRootPing) {
  TempHeapPath path("svc_loop");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());
  ASSERT_EQ(server->state(), svc::SvcState::kServing);
  auto client = svc::SvcClient::connect(path.str());

  EXPECT_EQ(client->ping(), ErrorCode::kOk);

  std::uint64_t sizes[4] = {64, 128, 256, 1024};
  core::NvPtr ptrs[4];
  ASSERT_EQ(client->alloc(sizes, 4, ptrs), ErrorCode::kOk);
  for (unsigned i = 0; i < 4; ++i) {
    ASSERT_FALSE(ptrs[i].is_null()) << "alloc " << i;
    void* p = client->raw(ptrs[i]);
    ASSERT_NE(p, nullptr);
    // The data window is real, writable memory: round-trip a payload and
    // the NvPtr <-> raw conversion.
    std::memset(p, 0x30 + static_cast<int>(i), sizes[i]);
    EXPECT_EQ(static_cast<unsigned char*>(p)[sizes[i] - 1], 0x30u + i);
    const core::NvPtr back = client->from_raw(p);
    EXPECT_EQ(back.heap_id, ptrs[i].heap_id);
    EXPECT_EQ(back.packed, ptrs[i].packed);
  }
  core::FreeResult fr[4];
  ASSERT_EQ(client->free_blocks(ptrs, 4, fr), ErrorCode::kOk);
  for (unsigned i = 0; i < 4; ++i) EXPECT_EQ(fr[i], core::FreeResult::kOk);
  // Double free through the service reports the validation verdict.
  ASSERT_EQ(client->free_blocks(ptrs, 1, fr), ErrorCode::kOk);
  EXPECT_NE(fr[0], core::FreeResult::kOk);

  std::uint64_t tx_sizes[2] = {96, 2048};
  core::NvPtr tx_ptrs[2];
  ASSERT_EQ(client->tx_alloc(tx_sizes, 2, tx_ptrs), ErrorCode::kOk);
  ASSERT_FALSE(tx_ptrs[0].is_null());
  ASSERT_FALSE(tx_ptrs[1].is_null());

  // Root travels by NvPtr through the ring.
  ASSERT_EQ(client->set_root(tx_ptrs[0]), ErrorCode::kOk);
  core::NvPtr root;
  ASSERT_EQ(client->get_root(&root), ErrorCode::kOk);
  EXPECT_EQ(root.heap_id, tx_ptrs[0].heap_id);
  EXPECT_EQ(root.packed, tx_ptrs[0].packed);

  ASSERT_EQ(client->free_blocks(tx_ptrs, 2, fr), ErrorCode::kOk);
  EXPECT_GT(server->requests_served(), 0u);

  // Out-of-range conversions refuse instead of fabricating addresses.
  EXPECT_EQ(client->raw(core::NvPtr::null()), nullptr);
  int stack_var = 0;
  EXPECT_TRUE(client->from_raw(&stack_var).is_null());
}

TEST(SvcServerClient, CachedOpsFlushLeavesNothingLive) {
  TempHeapPath path("svc_cache");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());
  {
    auto client = svc::SvcClient::connect(path.str());
    std::vector<core::NvPtr> held;
    for (unsigned i = 0; i < 64; ++i) {
      ErrorCode err = ErrorCode::kOk;
      const core::NvPtr p = client->alloc_one(64 + (i % 5) * 32, &err);
      ASSERT_EQ(err, ErrorCode::kOk);
      ASSERT_FALSE(p.is_null());
      held.push_back(p);
    }
    for (const core::NvPtr& p : held) {
      ASSERT_EQ(client->free_one(p), ErrorCode::kOk);
    }
    ASSERT_EQ(client->flush_caches(), ErrorCode::kOk);
  }  // dtor: clean disconnect
  // Magazines and the pending-free stash all went back through the ring.
  EXPECT_EQ(server->heap().stats().live_blocks, 0u);
}

TEST(SvcServerClient, DrainIsTypedRetry) {
  TempHeapPath path("svc_drain");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());
  auto client = svc::SvcClient::connect(path.str());
  ASSERT_EQ(client->ping(), ErrorCode::kOk);

  server->drain();
  EXPECT_EQ(server->state(), svc::SvcState::kDraining);
  EXPECT_EQ(client->server_state(), ErrorCode::kSvcRetry);
  std::uint64_t size = 64;
  core::NvPtr p;
  EXPECT_EQ(client->alloc(&size, 1, &p), ErrorCode::kSvcRetry);

  // New sessions are refused with the same typed verdict.
  svc::ClientOptions co;
  co.submit_timeout_ns = 50'000'000;
  try {
    (void)svc::SvcClient::connect(path.str(), co);
    FAIL() << "connect to a draining server succeeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kSvcRetry);
  }
}

TEST(SvcServerClient, DeadServerIsUnavailableAndFailsOverReadOnly) {
  TempHeapPath path("svc_dead");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());
  // This test exercises the fail-fast ladder (nobody will ever elect a
  // successor here — the stopped server still owns the heap), so the
  // automatic reconnect protocol must stay out of the way.
  svc::ClientOptions co;
  co.auto_failover = false;
  auto client = svc::SvcClient::connect(path.str(), co);

  // Park a root so the read-only leg has something to show.
  std::uint64_t size = 256;
  core::NvPtr p;
  ASSERT_EQ(client->alloc(&size, 1, &p), ErrorCode::kOk);
  ASSERT_FALSE(p.is_null());
  std::memset(client->raw(p), 0x77, size);
  ASSERT_EQ(client->set_root(p), ErrorCode::kOk);

  server->stop();  // segment flips kDead; the server still owns the heap
  EXPECT_EQ(server->state(), svc::SvcState::kDead);
  EXPECT_EQ(client->server_state(), ErrorCode::kSvcUnavailable);
  EXPECT_EQ(client->alloc(&size, 1, &p), ErrorCode::kSvcUnavailable);

  // attach_allocator: in-process bounces on the live OFD lock, service
  // bounces on the dead segment — the read-only leg must catch.
  iface::AllocatorConfig cfg;
  auto ro = iface::attach_allocator(path.str(), cfg);
  ASSERT_NE(ro, nullptr);
  EXPECT_STREQ(ro->name(), "poseidon+ro");
  EXPECT_EQ(ro->alloc(64), nullptr);
  EXPECT_FALSE(ro->free(nullptr));
  void* root = ro->root();
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(static_cast<unsigned char*>(root)[0], 0x77u);
}

TEST(SvcServerClient, AttachAllocatorPrefersInProcessWhenLockIsFree) {
  TempHeapPath path("svc_attach_free");
  {
    auto server = svc::SvcServer::start(path.str(), two_shard_server());
    server->stop();
  }  // server destroyed: OFD locks released, segment left kDead on disk
  iface::AllocatorConfig cfg;
  auto a = iface::attach_allocator(path.str(), cfg);
  ASSERT_NE(a, nullptr);
  EXPECT_STREQ(a->name(), "poseidon");
  void* p = a->alloc(128);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(a->free(p));
}

TEST(SvcServerClient, SvcAdapterForksServerAndServes) {
  TempHeapPath path("svc_adapter");
  iface::AllocatorConfig cfg;
  cfg.path = path.str();
  cfg.capacity = 32ull << 20;
  cfg.svc = true;
  auto a = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  ASSERT_NE(a, nullptr);
  EXPECT_STREQ(a->name(), "poseidon+svc");
  void* p = a->alloc(512);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0x42, 512);
  a->set_root(p);
  EXPECT_EQ(a->root(), p);
  EXPECT_TRUE(a->free(p));
}

// ---- dead-client reclamation -----------------------------------------------

TEST(SvcReclaim, DeadClientSessionReclaimedNothingLeaked) {
  TempHeapPath path("svc_reclaim");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // The victim: in-flight allocations it never collects, plus wedged
    // submission claims, then death without any destructor (the _exit is
    // the SIGKILL stand-in — no flush, no session close).
    try {
      auto c = svc::SvcClient::connect(path.str());
      for (unsigned i = 0; i < 4; ++i) {
        if (c->submit_alloc_no_wait_for_test(128) != ErrorCode::kOk) {
          ::_exit(3);
        }
      }
      if (c->hold_claims_for_test(2) != 2) ::_exit(4);
      c.release();  // leak deliberately: no clean disconnect
    } catch (...) {
      ::_exit(2);
    }
    ::_exit(0);
  }
  const int status = reap(pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "victim child failed";

  // The housekeeper must notice the death, wait out the grace period, and
  // free the session with its in-flight handles.
  for (unsigned waited = 0;
       server->sessions_reclaimed() == 0 && waited < 10000; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(server->sessions_reclaimed(), 1u) << "session never reclaimed";

  // The server still serves, and the reclaimed handles are free again.
  auto survivor = svc::SvcClient::connect(path.str());
  EXPECT_EQ(survivor->ping(), ErrorCode::kOk);
  std::uint64_t size = 64;
  core::NvPtr p;
  ASSERT_EQ(survivor->alloc(&size, 1, &p), ErrorCode::kOk);
  ASSERT_FALSE(p.is_null());
  core::FreeResult fr;
  ASSERT_EQ(survivor->free_blocks(&p, 1, &fr), ErrorCode::kOk);
  EXPECT_EQ(fr, core::FreeResult::kOk);
  EXPECT_EQ(server->heap().stats().live_blocks, 0u);
}

// ---- cross-process linearizability -----------------------------------------

// Two concurrent client processes allocate through the service, write
// tagged payloads through their own data windows, and publish every handle
// into a shared root array.  If the service ever handed the same block to
// both processes, the handle sets intersect or a payload is torn; if it
// leaked or double-freed, the final validated-free sweep and block count
// disagree.
constexpr unsigned kLinBlocksPerChild = 48;

struct LinSlot {
  std::uint64_t heap_id;
  std::uint64_t packed;
};

void lin_fill(void* dst, std::uint64_t size, std::uint64_t tag) {
  auto* b = static_cast<unsigned char*>(dst);
  for (std::uint64_t i = 0; i < size; ++i) {
    b[i] = static_cast<unsigned char>((tag * 131 + i) & 0xff);
  }
}

bool lin_check(const void* src, std::uint64_t size, std::uint64_t tag) {
  const auto* b = static_cast<const unsigned char*>(src);
  for (std::uint64_t i = 0; i < size; ++i) {
    if (b[i] != static_cast<unsigned char>((tag * 131 + i) & 0xff)) {
      return false;
    }
  }
  return true;
}

std::uint64_t lin_size(unsigned child, unsigned i) {
  return 48 + ((child * kLinBlocksPerChild + i) % 7) * 64;
}

[[noreturn]] void lin_child_main(const std::string& path, unsigned child) {
  try {
    auto c = svc::SvcClient::connect(path);
    core::NvPtr root;
    if (c->get_root(&root) != ErrorCode::kOk || root.is_null()) ::_exit(3);
    auto* slots = static_cast<LinSlot*>(c->raw(root));
    if (slots == nullptr) ::_exit(4);
    for (unsigned i = 0; i < kLinBlocksPerChild; ++i) {
      const std::uint64_t size = lin_size(child, i);
      core::NvPtr p;
      std::uint64_t sz = size;
      if (c->alloc(&sz, 1, &p) != ErrorCode::kOk || p.is_null()) ::_exit(5);
      void* raw = c->raw(p);
      if (raw == nullptr) ::_exit(6);
      const std::uint64_t tag =
          (std::uint64_t{child} << 32) | (i + 1);
      lin_fill(raw, size, tag);
      if (!lin_check(raw, size, tag)) ::_exit(7);
      LinSlot& s = slots[child * kLinBlocksPerChild + i];
      s.heap_id = p.heap_id;
      s.packed = p.packed;
    }
    c.reset();  // clean disconnect (nothing cached: batch API only)
  } catch (...) {
    ::_exit(2);
  }
  ::_exit(0);
}

TEST(SvcLinearizability, TwoClientProcessesNoDoubleHandoutNoTornPayload) {
  TempHeapPath path("svc_linear");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());

  // The shared ledger both children publish into, reachable via the root.
  auto parent = svc::SvcClient::connect(path.str());
  const std::uint64_t ledger_bytes =
      2 * kLinBlocksPerChild * sizeof(LinSlot);
  std::uint64_t sz = ledger_bytes;
  core::NvPtr ledger;
  ASSERT_EQ(parent->alloc(&sz, 1, &ledger), ErrorCode::kOk);
  ASSERT_FALSE(ledger.is_null());
  std::memset(parent->raw(ledger), 0, ledger_bytes);
  ASSERT_EQ(parent->set_root(ledger), ErrorCode::kOk);

  pid_t pids[2];
  for (unsigned child = 0; child < 2; ++child) {
    pids[child] = ::fork();
    ASSERT_GE(pids[child], 0);
    if (pids[child] == 0) lin_child_main(path.str(), child);
  }
  for (unsigned child = 0; child < 2; ++child) {
    const int status = reap(pids[child]);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "lin child " << child << " failed";
  }

  // Every published handle must be distinct (no block handed to two
  // processes) and still carry exactly its writer's payload.
  auto* slots = static_cast<LinSlot*>(parent->raw(ledger));
  ASSERT_NE(slots, nullptr);
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  std::vector<core::NvPtr> owned;
  for (unsigned child = 0; child < 2; ++child) {
    for (unsigned i = 0; i < kLinBlocksPerChild; ++i) {
      const LinSlot& s = slots[child * kLinBlocksPerChild + i];
      const core::NvPtr p{s.heap_id, s.packed};
      ASSERT_FALSE(p.is_null()) << "child " << child << " slot " << i;
      EXPECT_TRUE(seen.emplace(s.heap_id, s.packed).second)
          << "block handed out twice";
      const void* raw = parent->raw(p);
      ASSERT_NE(raw, nullptr);
      const std::uint64_t tag = (std::uint64_t{child} << 32) | (i + 1);
      EXPECT_TRUE(lin_check(raw, lin_size(child, i), tag))
          << "payload torn: child " << child << " slot " << i;
      owned.push_back(p);
    }
  }

  // The validated free path accepts every handle exactly once — the block
  // count then proves nothing else leaked through the service.
  core::FreeResult fr[svc::kMaxOpsPerReq];
  std::size_t off = 0;
  while (off < owned.size()) {
    const unsigned n = static_cast<unsigned>(
        std::min<std::size_t>(owned.size() - off, svc::kMaxOpsPerReq));
    ASSERT_EQ(parent->free_blocks(owned.data() + off, n, fr), ErrorCode::kOk);
    for (unsigned i = 0; i < n; ++i) {
      EXPECT_EQ(fr[i], core::FreeResult::kOk);
    }
    off += n;
  }
  core::FreeResult one;
  ASSERT_EQ(parent->free_blocks(&ledger, 1, &one), ErrorCode::kOk);
  EXPECT_EQ(one, core::FreeResult::kOk);
  EXPECT_EQ(server->heap().stats().live_blocks, 0u);
  std::string why;
  EXPECT_TRUE(server->heap().check_invariants(&why)) << why;
}

// ---- failover & self-healing -----------------------------------------------

// Injectable clock for liveness classification (a capture-less lambda
// converts to ClientOptions::now).
std::uint64_t g_fake_now = 0;

volatile sig_atomic_t g_server_term = 0;
void server_term(int) { g_server_term = 1; }

// Forked server child: owns the heap until SIGTERM, then stops cleanly.
// Used both as the initial server and as election fodder.
pid_t fork_server(const std::string& path) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  g_server_term = 0;
  struct sigaction sa {};
  sa.sa_handler = server_term;
  (void)::sigaction(SIGTERM, &sa, nullptr);
  try {
    auto server = svc::SvcServer::start(path, two_shard_server());
    while (g_server_term == 0) ::usleep(2'000);
    server->stop();
  } catch (...) {
    ::_exit(2);
  }
  ::_exit(0);
}

TEST(SvcFailover, ServerStateClassificationWithInjectedClock) {
  TempHeapPath path("svc_state_cls");
  auto server = svc::SvcServer::start(path.str(), two_shard_server());
  svc::ClientOptions co;
  co.auto_failover = false;
  co.now = [] { return g_fake_now; };
  g_fake_now = svc::monotonic_ns();
  auto client = svc::SvcClient::connect(path.str(), co);
  auto* h = svc::header_of(server->segment_base());

  // Fresh heartbeat: serving.
  EXPECT_EQ(client->server_state(), ErrorCode::kOk);

  // Heartbeat aged far past the threshold but the server pid is alive: a
  // wedged box is not a dead server.
  g_fake_now = svc::monotonic_ns() + co.server_stale_ns + 60'000'000'000ull;
  EXPECT_EQ(client->server_state(), ErrorCode::kOk);

  // Same staleness with a provably dead pid: unavailable.
  const pid_t dead = ::fork();
  if (dead == 0) ::_exit(0);
  ASSERT_GT(dead, 0);
  (void)reap(dead);
  const std::uint64_t real_pid = h->server_pid;
  h->server_pid = static_cast<std::uint64_t>(dead);
  EXPECT_EQ(client->server_state(), ErrorCode::kSvcUnavailable);
  h->server_pid = real_pid;

  // State machine verdicts trump heartbeat freshness.
  g_fake_now = svc::monotonic_ns();
  h->state.store(static_cast<std::uint32_t>(svc::SvcState::kDraining),
                 std::memory_order_release);
  EXPECT_EQ(client->server_state(), ErrorCode::kSvcRetry);
  h->state.store(static_cast<std::uint32_t>(svc::SvcState::kDead),
                 std::memory_order_release);
  EXPECT_EQ(client->server_state(), ErrorCode::kSvcUnavailable);
  h->state.store(static_cast<std::uint32_t>(svc::SvcState::kServing),
                 std::memory_order_release);
  EXPECT_EQ(client->server_state(), ErrorCode::kOk);
}

TEST(SvcFailover, GenerationBumpAndReconnectReconcilesLostHandles) {
  TempHeapPath path("svc_regen");
  auto s1 = svc::SvcServer::start(path.str(), two_shard_server());
  EXPECT_EQ(s1->generation(), 1u);

  svc::ClientOptions co;
  co.reconnect_attempts = 400;
  co.reconnect_backoff_ns = 500'000;
  co.reconnect_backoff_max_ns = 5'000'000;
  auto client = svc::SvcClient::connect(path.str(), co);
  EXPECT_EQ(client->generation(), 1u);

  // Handles whose completions this client never dequeues: the old server
  // executes them, so the reconnect drain must route them into the free
  // path instead of leaking them across generations.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(client->submit_alloc_no_wait_for_test(128), ErrorCode::kOk);
  }

  s1->stop();
  s1.reset();  // releases the heap; a successor can now win the election
  auto s2 = svc::SvcServer::start(path.str(), two_shard_server());
  EXPECT_EQ(s2->generation(), 2u);

  ASSERT_EQ(client->reconnect(), ErrorCode::kOk);
  EXPECT_EQ(client->generation(), 2u);

  // The re-admitted session serves normally on the successor.
  std::uint64_t size = 256;
  core::NvPtr p;
  ASSERT_EQ(client->alloc(&size, 1, &p), ErrorCode::kOk);
  ASSERT_FALSE(p.is_null());
  core::FreeResult fr;
  ASSERT_EQ(client->free_blocks(&p, 1, &fr), ErrorCode::kOk);
  EXPECT_EQ(fr, core::FreeResult::kOk);
  ASSERT_EQ(client->flush_caches(), ErrorCode::kOk);
  EXPECT_EQ(s2->heap().stats().live_blocks, 0u);
  std::string why;
  EXPECT_TRUE(s2->heap().check_invariants(&why)) << why;
}

TEST(SvcFailover, KillServerMidBatchReconcilesExactly) {
  TempHeapPath path("svc_kill");
  const pid_t first = fork_server(path.str());
  ASSERT_GT(first, 0);

  svc::ClientOptions co;
  co.server_stale_ns = 200'000'000;  // detect the kill fast
  co.reconnect_attempts = 400;
  co.reconnect_backoff_ns = 1'000'000;
  co.reconnect_backoff_max_ns = 20'000'000;
  std::vector<pid_t> elected;
  co.elect = [&path, &elected] { elected.push_back(fork_server(path.str())); };

  // The child publishes kServing only after full initialization.
  std::unique_ptr<svc::SvcClient> client;
  for (int i = 0;; ++i) {
    try {
      client = svc::SvcClient::connect(path.str(), co);
      break;
    } catch (const Error&) {
      ASSERT_LT(i, 2000);
      ::usleep(5'000);
    }
  }

  // Warm traffic so magazines, prefetches and free stashes are all in
  // flight when the server dies.
  std::vector<core::NvPtr> held;
  ErrorCode e = ErrorCode::kOk;
  for (int i = 0; i < 40; ++i) {
    const core::NvPtr p = client->alloc_one(512, &e);
    ASSERT_EQ(e, ErrorCode::kOk);
    ASSERT_FALSE(p.is_null());
    held.push_back(p);
  }

  ::kill(first, SIGKILL);
  (void)reap(first);

  // Traffic must ride through the failover: detection, election of the
  // successor, idempotent reconcile, then normal service.
  for (int i = 0; i < 200; ++i) {
    const core::NvPtr p = client->alloc_one(256, &e);
    ASSERT_EQ(e, ErrorCode::kOk) << "op " << i;
    ASSERT_FALSE(p.is_null()) << "op " << i;
    if (i % 2 == 0) {
      ASSERT_EQ(client->free_one(p), ErrorCode::kOk);
    } else {
      held.push_back(p);
    }
  }
  EXPECT_GE(client->generation(), 2u);
  ASSERT_FALSE(elected.empty());

  for (const core::NvPtr p : held) {
    ASSERT_EQ(client->free_one(p), ErrorCode::kOk);
  }
  ASSERT_EQ(client->flush_caches(), ErrorCode::kOk);
  client.reset();

  for (const pid_t pid : elected) {
    (void)::kill(pid, SIGTERM);
    const int st = reap(pid);
    EXPECT_TRUE(WIFEXITED(st));
  }

  // Exact-zero audit: everything allocated across both generations was
  // freed exactly once, and the metadata survived the crash.
  auto heap = core::Heap::open(path.str(), two_shard_server().heap_opts);
  EXPECT_EQ(heap->stats().live_blocks, 0u);
  std::string why;
  EXPECT_TRUE(heap->check_invariants(&why)) << why;
}

}  // namespace
}  // namespace poseidon
