// Unit tests for the multi-level memblock hash table: probing, bounded
// windows, level extension/shrink, collision handling and O(1) shape.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>

#include "core/hash_table.hpp"

namespace poseidon::core {
namespace {

constexpr std::uint64_t kLevel0 = 256;
constexpr unsigned kLevels = 4;

struct HashFixture : ::testing::Test {
  void SetUp() override {
    const std::size_t meta_bytes = align_up(sizeof(SubheapMeta), kPageSize);
    const std::size_t hash_bytes =
        level_offset(kLevel0, kLevels) + kPageSize;
    buf_size = meta_bytes + hash_bytes;
    buf = static_cast<std::byte*>(::aligned_alloc(kPageSize, buf_size));
    std::memset(buf, 0, buf_size);
    meta = reinterpret_cast<SubheapMeta*>(buf);
    meta->level0_slots = kLevel0;
    meta->levels_active = 1;
    meta->levels_max = kLevels;
    meta->hash_off = meta_bytes;
    meta->user_size = 1 << 20;
    table = std::make_unique<HashTable>(meta, buf);
    undo = std::make_unique<UndoLogger>(meta->undo, buf, true);
  }
  void TearDown() override { ::free(buf); }

  std::byte* buf = nullptr;
  std::size_t buf_size = 0;
  SubheapMeta* meta = nullptr;
  std::unique_ptr<HashTable> table;
  std::unique_ptr<UndoLogger> undo;
};

TEST_F(HashFixture, InsertThenFind) {
  MemblockRec* rec = table->insert(320, *undo);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->key, 321u);
  EXPECT_EQ(table->find(320), rec);
  EXPECT_EQ(table->find(352), nullptr);
  EXPECT_EQ(table->record_count(), 1u);
}

TEST_F(HashFixture, EraseMakesSlotReusable) {
  MemblockRec* rec = table->insert(64, *undo);
  table->erase(rec, *undo);
  EXPECT_EQ(table->find(64), nullptr);
  EXPECT_EQ(table->record_count(), 0u);
  MemblockRec* again = table->insert(64, *undo);
  EXPECT_EQ(again, rec);  // same primary slot, no tombstone residue
}

TEST_F(HashFixture, ManyKeysAllFindable) {
  std::set<std::uint64_t> keys;
  for (std::uint64_t off = 0; off < 200 * 32; off += 32) {
    MemblockRec* rec = table->insert(off, *undo);
    if (rec == nullptr) {
      // A probe window filled up (expected at ~80% level-0 load); real
      // callers defragment or extend — extend here.
      ASSERT_TRUE(table->try_extend(*undo)) << off;
      rec = table->insert(off, *undo);
      ASSERT_NE(rec, nullptr) << off;
    }
    undo->commit();  // one op per insert, as the sub-heap does
    keys.insert(off);
  }
  for (const auto off : keys) {
    ASSERT_NE(table->find(off), nullptr) << off;
  }
  EXPECT_EQ(table->record_count(), keys.size());
}

TEST_F(HashFixture, FillForcesLevelExtension) {
  // kLevel0 slots at level 0; inserting more must spill to level 1+.
  std::uint64_t inserted = 0;
  for (std::uint64_t off = 0; off < 3 * kLevel0 * 32; off += 32) {
    MemblockRec* rec = table->insert(off, *undo);
    if (rec == nullptr) {
      // A full window: real callers defragment, the raw table extends.
      ASSERT_TRUE(table->try_extend(*undo));
      rec = table->insert(off, *undo);
      ASSERT_NE(rec, nullptr);
    }
    undo->commit();
    ++inserted;
  }
  EXPECT_GT(table->levels_active(), 1u);
  EXPECT_EQ(table->record_count(), inserted);
  // Everything is still findable across levels.
  for (std::uint64_t off = 0; off < 3 * kLevel0 * 32; off += 32) {
    ASSERT_NE(table->find(off), nullptr) << off;
  }
}

TEST_F(HashFixture, ExtendStopsAtMaxLevels) {
  for (unsigned i = 1; i < kLevels; ++i) {
    EXPECT_TRUE(table->try_extend(*undo));
  }
  EXPECT_EQ(table->levels_active(), kLevels);
  EXPECT_FALSE(table->try_extend(*undo));
}

TEST_F(HashFixture, ShrinkTopWhenEmpty) {
  ASSERT_TRUE(table->try_extend(*undo));
  EXPECT_EQ(table->levels_active(), 2u);
  const auto range = table->shrink_top_if_empty(*undo);
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(table->levels_active(), 1u);
  // Range covers level 1: kLevel0*2 slots.
  EXPECT_EQ(range->len, kLevel0 * 2 * sizeof(MemblockRec));
  EXPECT_EQ(range->off, meta->hash_off + level_offset(kLevel0, 1));
}

TEST_F(HashFixture, ShrinkRefusesNonEmptyTop) {
  ASSERT_TRUE(table->try_extend(*undo));
  // Fill level 0 probe window for one hash bucket, pushing one key to L1.
  // Easier: lie via level_count to simulate occupancy.
  meta->level_count[1] = 1;
  EXPECT_FALSE(table->shrink_top_if_empty(*undo).has_value());
  meta->level_count[1] = 0;
  EXPECT_TRUE(table->shrink_top_if_empty(*undo).has_value());
}

TEST_F(HashFixture, ShrinkKeepsLevelZero) {
  EXPECT_FALSE(table->shrink_top_if_empty(*undo).has_value());
  EXPECT_EQ(table->levels_active(), 1u);
}

TEST_F(HashFixture, VisitWindowsSeesResidents) {
  MemblockRec* rec = table->insert(1024, *undo);
  rec->status = kBlockFree;
  unsigned seen = 0;
  table->visit_windows(1024, [&](MemblockRec* r) {
    if (r == rec) ++seen;
  });
  EXPECT_EQ(seen, 1u);
}

TEST_F(HashFixture, UndoRollbackUndoesInsert) {
  table->insert(96, *undo);
  undo->rollback();
  EXPECT_EQ(table->find(96), nullptr);
  EXPECT_EQ(meta->level_count[0], 0u);
}

TEST_F(HashFixture, UndoRollbackUndoesErase) {
  MemblockRec* rec = table->insert(96, *undo);
  rec->size_class = 5;
  undo->commit();
  auto undo2 = UndoLogger(meta->undo, buf, true);
  table->erase(rec, undo2);
  EXPECT_EQ(table->find(96), nullptr);
  undo2.rollback();
  MemblockRec* back = table->find(96);
  ASSERT_NE(back, nullptr);
  EXPECT_EQ(back->size_class, 5u);
}

TEST_F(HashFixture, ProbeCostIsBounded) {
  // O(1) shape check: lookups never touch more than
  // levels_max * kProbeWindow slots, independent of occupancy — verified
  // indirectly: a miss returns without scanning whole levels even when
  // thousands of records exist.
  for (unsigned i = 1; i < kLevels; ++i) table->try_extend(*undo);
  undo->commit();
  std::uint64_t n = 0;
  for (std::uint64_t off = 0; off < 1500 * 32 && n < 1500; off += 32, ++n) {
    if (table->insert(off, *undo) == nullptr) break;
    undo->commit();
  }
  // A missing key far outside the inserted range.
  EXPECT_EQ(table->find(1 << 19), nullptr);
}

}  // namespace
}  // namespace poseidon::core
