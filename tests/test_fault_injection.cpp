// Fault injection (pmem/fault_inject.hpp): syscall-level errno injection
// into Pool's wrappers, punch-hole degradation, typed I/O errors, and page
// poisoning driving the quarantine/degraded-service path end to end.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "core/heap.hpp"
#include "core/layout.hpp"
#include "pmem/fault_inject.hpp"
#include "pmem/pool.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::Heap;
using core::NvPtr;
using pmem::fault::SysOp;
using test::small_opts;
using test::TempHeapPath;

// Every test disarms on entry and exit so a failing assertion cannot leak
// an armed fault into the rest of the suite.
class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    pmem::fault::disarm_all();
    pmem::fault::poison_clear();
  }
  void TearDown() override {
    pmem::fault::disarm_all();
    pmem::fault::poison_clear();
  }
};

TEST_F(FaultInjection, PunchHoleRetriesEintr) {
  TempHeapPath path("fi_eintr");
  pmem::Pool p = pmem::Pool::create(path.str(), 1 << 20);
  pmem::fault::arm(SysOp::kFallocate, 1, EINTR);
  EXPECT_TRUE(p.punch_hole(0, 4096));  // retried past the injected EINTR
}

TEST_F(FaultInjection, PunchHoleSkipsUnsupportedFilesystem) {
  TempHeapPath path("fi_notsup");
  pmem::Pool p = pmem::Pool::create(path.str(), 1 << 20);
  pmem::fault::arm(SysOp::kFallocate, 1, EOPNOTSUPP);
  EXPECT_FALSE(p.punch_hole(0, 4096));
  pmem::fault::arm(SysOp::kFallocate, 1, ENOSPC);
  EXPECT_FALSE(p.punch_hole(0, 4096));
  // Any other errno is a real error and must surface as a typed kIo.
  pmem::fault::arm(SysOp::kFallocate, 1, EIO);
  try {
    p.punch_hole(0, 4096);
    FAIL() << "EIO must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kIo);
  }
}

TEST_F(FaultInjection, DefragStaysAliveWhenHolesCannotBePunched) {
  TempHeapPath path("fi_defrag");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  // Drive the hash table past level 0 (1024 slots) with 32 B records,
  // then shred every remaining large free block into 4 KiB pieces so the
  // only way back to a big block is a full defragmentation pass.
  std::vector<NvPtr> ptrs;
  for (unsigned i = 0; i < 2048; ++i) {
    const NvPtr p = h->alloc(32);
    ASSERT_FALSE(p.is_null());
    ptrs.push_back(p);
  }
  ASSERT_GE(h->stats().hash_extensions, 1u);
  for (;;) {
    const NvPtr p = h->alloc(4096);
    if (p.is_null()) break;
    ptrs.push_back(p);
  }
  // Free everything and demand the whole region back while fallocate
  // reports EOPNOTSUPP on every call: defragmentation merges the region
  // back together, the emptied hash levels shrink, and the unpunchable
  // holes are skipped (counted) instead of killing the operation.
  pmem::fault::arm_every(SysOp::kFallocate, 1, EOPNOTSUPP);
  for (const NvPtr& p : ptrs) ASSERT_EQ(h->free(p), core::FreeResult::kOk);
  const NvPtr big = h->alloc(1 << 20);
  EXPECT_FALSE(big.is_null());
  EXPECT_GE(h->stats().hash_shrinks, 1u);
  EXPECT_GE(h->metrics().punch_hole_skips.read(), 1u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

TEST_F(FaultInjection, InjectedSyscallFailuresAreTypedIoErrors) {
  TempHeapPath path("fi_io");
  pmem::fault::arm(SysOp::kOpen, 1, EACCES);
  try {
    pmem::Pool::create(path.str(), 1 << 20);
    FAIL() << "injected open failure must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kIo);
  }
  pmem::fault::disarm_all();
  pmem::Pool::create(path.str(), 1 << 20);  // file now exists
  pmem::fault::arm(SysOp::kMmap, 1, ENOMEM);
  try {
    pmem::Pool::open(path.str());
    FAIL() << "injected mmap failure must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kIo);
  }
  pmem::fault::disarm_all();
  pmem::fault::arm(SysOp::kFstat, 1, EIO);
  try {
    pmem::Pool::open(path.str());
    FAIL() << "injected fstat failure must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.poseidon_code(), ErrorCode::kIo);
  }
}

TEST_F(FaultInjection, PoisonedMetadataQuarantinesOnlyThatSubheap) {
  TempHeapPath path("fi_poison");
  core::Options opts = small_opts(2);
  opts.policy = core::SubheapPolicy::kFixed0;
  opts.nshards = 1;  // white-box: both sub-heaps must share one pool shard
  std::vector<NvPtr> ptrs;
  {
    auto h = Heap::create(path.str(), 1 << 20, opts);
    for (unsigned i = 0; i < 3; ++i) {
      const NvPtr p = h->alloc(32);
      ASSERT_FALSE(p.is_null());
      ptrs.push_back(p);
    }
    std::memset(h->raw(ptrs[0]), 0xab, 32);
  }
  core::SuperBlock sb{};
  {
    pmem::Pool p = pmem::Pool::open(path.str());
    std::memcpy(&sb, p.data(), sizeof(sb));
  }
  // Poison sub-heap 0's metadata page in the NEXT mapping: a PM media
  // error under the allocator's own bookkeeping.
  pmem::fault::poison_arm(sb.subheap_meta_off, 4096);
  {
    auto h = Heap::open(path.str(), opts);
    // Detection: the open-time probe faults, the sub-heap is quarantined,
    // and observability reports it.
    EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kQuarantined);
    EXPECT_GE(h->metrics().corruption_detected.read(), 1u);
    EXPECT_GE(h->metrics().subheaps_quarantined.read(), 1u);
    EXPECT_EQ(h->stats().subheaps_quarantined, 1u);
    bool saw_quarantine_event = false;
    for (const auto& e : h->flight_events()) {
      if (e.op == static_cast<std::uint16_t>(obs::FlightOp::kQuarantine)) {
        saw_quarantine_event = true;
      }
    }
    EXPECT_TRUE(saw_quarantine_event);
    // Degradation: frees into the quarantined sub-heap get the typed
    // refusal, its user data stays readable, and the heap keeps serving
    // allocations from the healthy sub-heap.
    EXPECT_EQ(h->free(ptrs[0]), core::FreeResult::kQuarantined);
    const auto* data = static_cast<const unsigned char*>(h->raw(ptrs[0]));
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(data[0], 0xab);
    const NvPtr p = h->alloc(64);
    ASSERT_FALSE(p.is_null());
    EXPECT_EQ(p.subheap(), 1u);
    EXPECT_EQ(h->subheap_health(1), core::SubheapHealth::kReady);
  }
  // Repair: a fresh mapping is clean (the poison was one-shot), so fsck
  // rebuilds the sub-heap and the committed blocks free exactly once.
  {
    auto h = Heap::open(path.str(), opts);
    EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kQuarantined);
    const auto rep = h->fsck();
    EXPECT_GE(rep.repaired, 1u);
    EXPECT_EQ(h->subheap_health(0), core::SubheapHealth::kReady);
    for (const NvPtr& p : ptrs) {
      EXPECT_EQ(h->free(p), core::FreeResult::kOk);
      EXPECT_NE(h->free(p), core::FreeResult::kOk);
    }
    std::string why;
    EXPECT_TRUE(h->check_invariants(&why)) << why;
  }
}

TEST_F(FaultInjection, FaultGuardProbesWithoutCrashing) {
  // Plain sanity of the probe primitive itself on ordinary memory.
  pmem::fault::FaultGuard guard;
  const std::string s(8192, 'x');
  EXPECT_TRUE(guard.readable(s.data(), s.size()));
}

}  // namespace
}  // namespace poseidon
