// The crash-safe per-thread allocation cache (core/thread_cache.hpp):
// hit/miss/flush accounting, preserved free validation, stats adjustment,
// and — the part that earns "crash-safe" — recovery draining a cache lost
// at a crash back to the free lists with zero leaked blocks, for crashes
// injected at every cache-path crash point (in-process throws and forked
// children alike).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/heap.hpp"
#include "core/thread_cache.hpp"
#include "pmem/crashpoint.hpp"
#include "tests/test_util.hpp"

namespace poseidon {
namespace {

using core::FreeResult;
using core::Heap;
using core::NvPtr;
using core::Options;
using core::ThreadCache;
using test::small_opts;
using test::TempHeapPath;

Options cache_opts(unsigned nsubheaps = 1) {
  Options o = small_opts(nsubheaps);
  o.thread_cache = true;
  return o;
}

TEST(ThreadCache, DisabledByDefaultAndCountersStayZero) {
  TempHeapPath path("tc_off");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  NvPtr p = h->alloc(64);
  ASSERT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
  const auto s = h->stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 0u);
  EXPECT_EQ(s.cache_cached_blocks, 0u);
}

TEST(ThreadCache, HitMissAccountingAndLifoReuse) {
  TempHeapPath path("tc_hits");
  auto h = Heap::create(path.str(), 1 << 20, cache_opts());

  // First allocation of a class misses (cold cache) and refills.
  NvPtr a = h->alloc(64);
  ASSERT_FALSE(a.is_null());
  auto s = h->stats();
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.cache_misses, 1u);

  // A freed block is parked in the magazine and handed straight back.
  EXPECT_EQ(h->free(a), FreeResult::kOk);
  NvPtr b = h->alloc(64);
  ASSERT_FALSE(b.is_null());
  EXPECT_EQ(b.packed, a.packed) << "LIFO magazine returns the hot block";
  s = h->stats();
  EXPECT_EQ(s.cache_hits, 1u);

  // Steady-state pairs: the paper-motivated >50% hot-path hit rate.
  for (int i = 0; i < 200; ++i) {
    NvPtr p = h->alloc(64);
    ASSERT_FALSE(p.is_null());
    ASSERT_EQ(h->free(p), FreeResult::kOk);
  }
  s = h->stats();
  EXPECT_GT(s.cache_hits, s.cache_misses);
  EXPECT_GT(static_cast<double>(s.cache_hits) /
                static_cast<double>(s.cache_hits + s.cache_misses),
            0.5);
  EXPECT_TRUE(h->check_invariants());
}

TEST(ThreadCache, StatsTreatCachedBlocksAsFree) {
  TempHeapPath path("tc_stats");
  auto h = Heap::create(path.str(), 1 << 20, cache_opts());
  NvPtr p = h->alloc(128);
  ASSERT_FALSE(p.is_null());
  auto s = h->stats();
  // The refill parked extra blocks, but only one is live to the app.
  EXPECT_EQ(s.live_blocks, 1u);
  EXPECT_EQ(s.allocated_bytes, 128u);
  EXPECT_GT(s.cache_cached_blocks, 0u);

  EXPECT_EQ(h->free(p), FreeResult::kOk);
  s = h->stats();
  EXPECT_EQ(s.live_blocks, 0u);
  EXPECT_EQ(s.allocated_bytes, 0u);
}

TEST(ThreadCache, WatermarkFlushReturnsBlocksToFreeLists) {
  TempHeapPath path("tc_flush");
  auto h = Heap::create(path.str(), 1 << 20, cache_opts());
  std::vector<NvPtr> held;
  for (unsigned i = 0; i < 2 * ThreadCache::kMagazineCap; ++i) {
    NvPtr p = h->alloc(64);
    ASSERT_FALSE(p.is_null());
    held.push_back(p);
  }
  for (NvPtr p : held) ASSERT_EQ(h->free(p), FreeResult::kOk);
  const auto s = h->stats();
  EXPECT_GT(s.cache_flushes, 0u) << "watermark must have tripped";
  EXPECT_LE(s.cache_cached_blocks, ThreadCache::kMagazineCap);
  EXPECT_EQ(s.live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(ThreadCache, FreeValidationIsPreserved) {
  TempHeapPath path("tc_validate");
  auto h = Heap::create(path.str(), 1 << 20, cache_opts());
  NvPtr p = h->alloc(256);
  ASSERT_FALSE(p.is_null());

  // Interior pointer: rejected without touching the cache.
  const NvPtr interior =
      NvPtr::make(p.heap_id, p.subheap(), p.offset() + 64);
  EXPECT_NE(h->free(interior), FreeResult::kOk);

  // Never-allocated but aligned offset in a tracked region.
  NvPtr q = h->alloc(256);
  ASSERT_FALSE(q.is_null());
  EXPECT_EQ(h->free(q), FreeResult::kOk);

  // Same-thread double free of a *cached* block.
  EXPECT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->free(p), FreeResult::kDoubleFree);

  // Double free of a block that went through a full flush cycle.
  std::vector<NvPtr> burst;
  for (unsigned i = 0; i < 2 * ThreadCache::kMagazineCap; ++i) {
    burst.push_back(h->alloc(64));
  }
  for (NvPtr b : burst) ASSERT_EQ(h->free(b), FreeResult::kOk);
  // The oldest of the burst was flushed to the persistent free lists.
  EXPECT_EQ(h->free(burst.front()), FreeResult::kDoubleFree);
  EXPECT_TRUE(h->check_invariants());
}

TEST(ThreadCache, CachedMemoryIsUsable) {
  TempHeapPath path("tc_usable");
  auto h = Heap::create(path.str(), 1 << 20, cache_opts());
  for (int round = 0; round < 3; ++round) {
    std::vector<NvPtr> ps;
    for (int i = 0; i < 20; ++i) {
      NvPtr p = h->alloc(512);
      ASSERT_FALSE(p.is_null());
      std::memset(h->raw(p), 0xA5 + round, 512);
      ps.push_back(p);
    }
    for (NvPtr p : ps) {
      EXPECT_EQ(static_cast<unsigned char*>(h->raw(p))[0], 0xA5 + round);
      ASSERT_EQ(h->free(p), FreeResult::kOk);
    }
  }
  EXPECT_TRUE(h->check_invariants());
}

TEST(ThreadCache, LostCacheDrainsOnReopenWithZeroLeak) {
  TempHeapPath path("tc_drain");
  const Options o = cache_opts();
  std::vector<NvPtr> held;
  {
    auto h = Heap::create(path.str(), 1 << 20, o);
    // Populate magazines across several classes, keep some blocks live.
    for (const std::uint64_t size : {32u, 64u, 256u, 1024u, 8192u}) {
      for (int i = 0; i < 12; ++i) {
        NvPtr p = h->alloc(size);
        ASSERT_FALSE(p.is_null());
        if (i % 3 == 0) {
          held.push_back(p);
        } else {
          ASSERT_EQ(h->free(p), FreeResult::kOk);
        }
      }
    }
    ASSERT_GT(h->stats().cache_cached_blocks, 0u);
    // Destroy without flushing: for the cache this IS a crash.
  }
  auto h = Heap::open(path.str(), o);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
  const auto s = h->stats();
  EXPECT_EQ(s.live_blocks, held.size());
  EXPECT_EQ(s.cache_cached_blocks, 0u);

  // Zero-leak proof: once the app frees its blocks, the whole region can
  // defragment back into one top-class block — impossible if any block
  // leaked from the lost magazines.
  for (NvPtr p : held) EXPECT_EQ(h->free(p), FreeResult::kOk);
  h.reset();  // drop whatever those frees cached again
  auto h2 = Heap::open(path.str(), o);
  NvPtr whole = h2->alloc(h2->user_capacity());
  EXPECT_FALSE(whole.is_null())
      << "user region cannot re-coalesce: blocks leaked";
}

// In-process crash sweep: arm the k-th hit of any cache-path crash point,
// run alloc/free churn, and require that after reopening (a) invariants
// hold and (b) the live count equals exactly the blocks the app still
// held — nothing leaked from magazines, logs or half-finished batches.
class CacheCrashSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheCrashSweep, ThrowAtCachePointLeaksNothing) {
  const std::uint64_t nth = GetParam();
  TempHeapPath path("tc_crash");
  const Options o = cache_opts();
  std::vector<NvPtr> held;
  bool crashed = false;
  {
    auto h = Heap::create(path.str(), 1 << 20, o);
    pmem::crash_arm("cache.", nth, pmem::CrashAction::kThrow);
    try {
      for (int i = 0; i < 4000; ++i) {
        const std::uint64_t size = 32u << (i % 5);
        if (held.size() < 40 && (i % 3) != 0) {
          NvPtr p = h->alloc(size);
          if (!p.is_null()) held.push_back(p);
        } else if (!held.empty()) {
          NvPtr p = held.back();
          // Remove first: if free() crashes mid-flush the block was
          // already parked+logged, i.e. durably freed after recovery.
          held.pop_back();
          const FreeResult r = h->free(p);
          ASSERT_NE(r, FreeResult::kInvalidPointer);
        }
      }
    } catch (const pmem::CrashException&) {
      crashed = true;
    }
    pmem::crash_disarm();
  }
  auto h = Heap::open(path.str(), o);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
  EXPECT_EQ(h->stats().live_blocks, held.size())
      << "nth=" << nth << " crashed=" << crashed;
  for (NvPtr p : held) EXPECT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->stats().live_blocks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CacheCrashSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89, 144, 233));

TEST(ThreadCache, ForkCrashInCachePathsRecovers) {
  // Child does pure alloc/free pairs, so at most ONE block (the in-flight
  // singleton, the paper's documented alloc-then-link gap) may survive a
  // kill anywhere in the cache paths.
  for (const std::uint64_t nth : {1u, 4u, 9u, 25u, 60u, 120u}) {
    TempHeapPath path("tc_fork");
    const Options o = cache_opts();
    { auto h = Heap::create(path.str(), 1 << 20, o); }
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      auto h = Heap::open(path.str(), o);
      pmem::crash_arm("cache.", nth, pmem::CrashAction::kExit);
      for (int i = 0; i < 1000000; ++i) {
        NvPtr p = h->alloc(32u << (i % 5));
        if (!p.is_null()) (void)h->free(p);
      }
      _exit(0);
    }
    int status = 0;
    waitpid(pid, &status, 0);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 42) << "child must crash in a cache path";

    auto h = Heap::open(path.str(), o);
    std::string why;
    EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
    EXPECT_LE(h->stats().live_blocks, 1u) << "cache blocks leaked";
    NvPtr p = h->alloc(64);
    EXPECT_FALSE(p.is_null());
    EXPECT_EQ(h->free(p), FreeResult::kOk);
  }
}

TEST(ThreadCache, CrashDuringCacheDrainIsIdempotent) {
  TempHeapPath path("tc_drain_crash");
  const Options o = cache_opts();
  {
    auto h = Heap::create(path.str(), 1 << 20, o);
    for (int i = 0; i < 30; ++i) {
      NvPtr p = h->alloc(64);
      ASSERT_FALSE(p.is_null());
      ASSERT_EQ(h->free(p), FreeResult::kOk);  // populate the cache log
    }
    ASSERT_GT(h->stats().cache_cached_blocks, 0u);
  }
  // Child crashes while recovery is draining the cache log.
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    pmem::crash_arm("recover.after_cache_free", 1, pmem::CrashAction::kExit);
    auto h = Heap::open(path.str(), o);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 42) << "child must die mid-drain";

  auto h = Heap::open(path.str(), o);  // drain resumes from scratch
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
  EXPECT_EQ(h->stats().live_blocks, 0u);
  EXPECT_EQ(h->stats().cache_cached_blocks, 0u);
}

TEST(ThreadCache, ConcurrentPairsAcrossThreads) {
  TempHeapPath path("tc_mt");
  Options o = cache_opts(4);
  o.policy = core::SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 8 << 20, o);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<NvPtr> pool;
      for (int i = 0; i < 3000; ++i) {
        if (pool.size() < 50 && ((i * 31 + t) % 3) != 0) {
          NvPtr p = h->alloc(32u << (i % 6));
          if (!p.is_null()) pool.push_back(p);
        } else if (!pool.empty()) {
          ASSERT_EQ(h->free(pool.back()), FreeResult::kOk);
          pool.pop_back();
        }
      }
      for (NvPtr p : pool) ASSERT_EQ(h->free(p), FreeResult::kOk);
    });
  }
  for (auto& th : threads) th.join();
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
  const auto s = h->stats();
  EXPECT_EQ(s.live_blocks, 0u);
  EXPECT_GT(s.cache_hits, 0u);
}

}  // namespace
}  // namespace poseidon
