// Unit tests for the persistent-memory substrate: pool mapping, hole
// punching, the persistence simulator, and crash-point injection.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>

#include "common/compiler.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/persist.hpp"
#include "pmem/pool.hpp"
#include "pmem/sim_domain.hpp"
#include "tests/test_util.hpp"

namespace poseidon::pmem {
namespace {

using test::TempHeapPath;

TEST(Pool, CreateMapsRequestedSize) {
  TempHeapPath path("pool_create");
  Pool p = Pool::create(path.str(), 1 << 20);
  ASSERT_TRUE(p.valid());
  EXPECT_EQ(p.size(), 1u << 20);
  // Fresh pool reads as zero (sparse file).
  EXPECT_EQ(p.data()[0], std::byte{0});
  EXPECT_EQ(p.data()[(1 << 20) - 1], std::byte{0});
}

TEST(Pool, CreateFailsIfExists) {
  TempHeapPath path("pool_exists");
  Pool p = Pool::create(path.str(), 4096);
  EXPECT_THROW(Pool::create(path.str(), 4096), std::system_error);
}

TEST(Pool, OpenMissingFails) {
  EXPECT_THROW(Pool::open("/dev/shm/definitely_not_here.heap"),
               std::system_error);
}

TEST(Pool, NonRegularFilesAreRejected) {
  // A directory is stat-able but is not a pool.
  EXPECT_FALSE(Pool::exists("/dev/shm"));
  EXPECT_THROW(Pool::open("/dev/shm"), std::exception);
  EXPECT_THROW(Pool::create("/dev/shm", 4096), std::invalid_argument);
  // A device node opens fine but cannot back a mapping; the explicit check
  // turns a confusing mmap/ftruncate errno into a clear message.
  EXPECT_FALSE(Pool::exists("/dev/null"));
  EXPECT_THROW(Pool::open("/dev/null"), std::invalid_argument);
  // open_or_create on a directory must fail up front, not via mmap.
  EXPECT_THROW(core::Heap::open_or_create("/dev/shm", 1 << 20),
               std::exception);
}

TEST(Pool, DataSurvivesReopen) {
  TempHeapPath path("pool_reopen");
  {
    Pool p = Pool::create(path.str(), 64 << 10);
    std::memcpy(p.data() + 1000, "persistent!", 11);
    persist(p.data() + 1000, 11);
  }
  Pool p = Pool::open(path.str());
  EXPECT_EQ(p.size(), 64u << 10);
  EXPECT_EQ(std::memcmp(p.data() + 1000, "persistent!", 11), 0);
}

TEST(Pool, PunchHoleZeroesAndDeallocates) {
  TempHeapPath path("pool_punch");
  Pool p = Pool::create(path.str(), 1 << 20);
  std::memset(p.data(), 0xaa, 1 << 20);
  persist(p.data(), 1 << 20);
  const std::size_t before = p.allocated_bytes();
  EXPECT_GT(before, 0u);
  p.punch_hole(4096, 512 * 1024);
  EXPECT_LT(p.allocated_bytes(), before);
  // Punched range reads back as zero; neighbours are untouched.
  EXPECT_EQ(p.data()[4096], std::byte{0});
  EXPECT_EQ(p.data()[4096 + 512 * 1024 - 1], std::byte{0});
  EXPECT_EQ(p.data()[0], std::byte{0xaa});
  EXPECT_EQ(p.data()[4096 + 512 * 1024], std::byte{0xaa});
  // Punched pages are writable again (filesystem re-allocates on store).
  p.data()[8192] = std::byte{0x55};
  EXPECT_EQ(p.data()[8192], std::byte{0x55});
}

TEST(Pool, MoveTransfersOwnership) {
  TempHeapPath path("pool_move");
  Pool a = Pool::create(path.str(), 4096);
  std::byte* base = a.data();
  Pool b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(b.data(), base);
}

TEST(Persist, FlushPrimitivesDoNotCrash) {
  // Functional check that the runtime-dispatched clwb/clflushopt paths
  // execute on this CPU.
  alignas(kCacheLineSize) char buf[256];
  std::memset(buf, 1, sizeof(buf));
  flush_lines(buf, sizeof(buf));
  fence();
  persist(buf, 1);
  persist(buf + 255, 1);
  persist(buf, 0);  // empty range is a no-op
}

TEST(SimDomain, StoreWithoutPersistIsLostOnCrash) {
  alignas(4096) static char region[8192];
  std::memset(region, 0, sizeof(region));
  // Loss-model tests pin kCacheLineFlush: under a modeled eADR/none domain
  // every dirty line survives and there would be nothing to assert.
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  nv_store(*reinterpret_cast<std::uint64_t*>(region), std::uint64_t{42});
  EXPECT_EQ(sim.dirty_line_count(), 1u);
  sim.crash(/*seed=*/1, /*survive_prob=*/0.0);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(region), 0u);
}

TEST(SimDomain, PersistedStoreSurvivesCrash) {
  alignas(4096) static char region[8192];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region));
  auto& word = *reinterpret_cast<std::uint64_t*>(region + 64);
  nv_store(word, std::uint64_t{7});
  persist(&word, sizeof(word));
  EXPECT_EQ(sim.dirty_line_count(), 0u);
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 7u);
}

TEST(SimDomain, SurviveProbOneKeepsUnflushedLines) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region));
  nv_store(*reinterpret_cast<std::uint64_t*>(region), std::uint64_t{9});
  sim.crash(1, 1.0);  // every dirty line "was evicted" => durable
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(region), 9u);
}

TEST(SimDomain, PartialSurvivalIsPerLine) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  for (int line = 0; line < 32; ++line) {
    nv_store(*reinterpret_cast<std::uint64_t*>(region + line * 64),
             std::uint64_t{1});
  }
  EXPECT_EQ(sim.dirty_line_count(), 32u);
  sim.crash(123, 0.5);
  unsigned survived = 0;
  for (int line = 0; line < 32; ++line) {
    survived += *reinterpret_cast<std::uint64_t*>(region + line * 64) == 1;
  }
  EXPECT_GT(survived, 4u);   // ~16 expected
  EXPECT_LT(survived, 28u);
}

TEST(SimDomain, StoresOutsideDomainIgnored) {
  alignas(4096) static char region[4096];
  static char outside[64];
  SimDomain sim(region, sizeof(region));
  nv_store(*reinterpret_cast<std::uint64_t*>(outside), std::uint64_t{5});
  EXPECT_EQ(sim.dirty_line_count(), 0u);
}

TEST(SimDomain, CheckpointClearsDirtyState) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region));
  nv_store(*reinterpret_cast<std::uint64_t*>(region), std::uint64_t{3});
  sim.checkpoint();
  sim.crash(1, 0.0);
  EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(region), 3u);
}

TEST(SimDomain, OnlyOneDomainAtATime) {
  alignas(4096) static char region[4096];
  SimDomain sim(region, sizeof(region));
  EXPECT_THROW(SimDomain(region, sizeof(region)), std::logic_error);
}

TEST(SimDomain, InactiveAfterDestruction) {
  alignas(4096) static char region[4096];
  {
    SimDomain sim(region, sizeof(region));
    EXPECT_TRUE(sim_active());
  }
  EXPECT_FALSE(sim_active());
}

// Regression (the flush/fence fidelity bug): a clwb only *initiates* the
// write-back; durability needs the fence.  The old simulator committed the
// line at flush time, so protocols missing a fence looked crash-safe.
TEST(SimDomain, FlushedButUnfencedLineCanBeLost) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{42});
  flush(&word, sizeof(word));  // no fence
  EXPECT_EQ(sim.dirty_line_count(), 1u);
  EXPECT_EQ(sim.flushed_pending_line_count(), 1u);
  sim.crash(/*seed=*/1, /*survive_prob=*/0.0);
  EXPECT_EQ(word, 0u) << "flushed-but-unfenced line must be losable";
}

TEST(SimDomain, FenceCommitsFlushedLines) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{42});
  flush(&word, sizeof(word));
  fence();
  EXPECT_EQ(sim.dirty_line_count(), 0u);
  EXPECT_EQ(sim.flushed_pending_line_count(), 0u);
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 42u);
}

// Regression (the len == 0 satellite): an empty persist used to execute a
// bare sfence, silently committing unrelated flushed-pending lines.
TEST(SimDomain, EmptyPersistDoesNotFence) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{7});
  flush(&word, sizeof(word));
  persist(region + 512, 0);  // empty: must NOT act as a fence
  EXPECT_EQ(sim.flushed_pending_line_count(), 1u);
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 0u);
}

TEST(SimDomain, StoreAfterFlushInvalidatesPending) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{1});
  flush(&word, sizeof(word));
  nv_store(word, std::uint64_t{2});  // re-dirty before the fence
  EXPECT_EQ(sim.flushed_pending_line_count(), 0u);
  fence();  // nothing pending: commits nothing
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 0u) << "in-flight write-back of stale contents is not replayed";
}

TEST(SimDomain, EadrModelKeepsAllStores) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kEadr);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{11});  // no flush, no fence
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 11u) << "eADR: globally visible means durable";
}

TEST(SimDomain, NoneModelKeepsAllStores) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kNone);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  nv_store(word, std::uint64_t{13});
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 13u) << "no durability boundary: the mapping survives";
}

TEST(PersistDomainApi, ParseRoundTrip) {
  PersistDomain d;
  EXPECT_TRUE(parse_persist_domain("cacheline", &d));
  EXPECT_EQ(d, PersistDomain::kCacheLineFlush);
  EXPECT_TRUE(parse_persist_domain("clwb", &d));
  EXPECT_EQ(d, PersistDomain::kCacheLineFlush);
  EXPECT_TRUE(parse_persist_domain("eadr", &d));
  EXPECT_EQ(d, PersistDomain::kEadr);
  EXPECT_TRUE(parse_persist_domain("none", &d));
  EXPECT_EQ(d, PersistDomain::kNone);
  EXPECT_FALSE(parse_persist_domain("garbage", &d));
  EXPECT_FALSE(parse_persist_domain(nullptr, &d));
  for (const PersistDomain x :
       {PersistDomain::kCacheLineFlush, PersistDomain::kEadr,
        PersistDomain::kNone}) {
    ASSERT_TRUE(parse_persist_domain(persist_domain_name(x), &d));
    EXPECT_EQ(d, x);
  }
}

TEST(PersistDomainApi, ScopedOverrideRestores) {
  const PersistDomain before = persist_domain();
  {
    ScopedPersistDomain scope(PersistDomain::kEadr);
    EXPECT_EQ(persist_domain(), PersistDomain::kEadr);
    {
      ScopedPersistDomain inner(PersistDomain::kNone);
      EXPECT_EQ(persist_domain(), PersistDomain::kNone);
    }
    EXPECT_EQ(persist_domain(), PersistDomain::kEadr);
  }
  EXPECT_EQ(persist_domain(), before);
}

TEST(PersistDomainApi, BarriersExecuteInEveryDomain) {
  alignas(kCacheLineSize) char buf[256];
  std::memset(buf, 1, sizeof(buf));
  for (const PersistDomain d :
       {PersistDomain::kCacheLineFlush, PersistDomain::kEadr,
        PersistDomain::kNone}) {
    ScopedPersistDomain scope(d);
    persist(buf, sizeof(buf));
    flush(buf, 64);
    fence();
    persist(buf, 0);
    FlushBatch batch;
    batch.add(buf, 64);
    batch.add(buf + 128, 64);
    batch.commit();
  }
}

TEST(PersistDomainApi, EnvOverrideWinsOverExplicitMode) {
  const PersistDomain before = persist_domain();
  const char* prior = std::getenv("POSEIDON_PERSIST_DOMAIN");
  const std::string saved = prior != nullptr ? prior : "";
  ::setenv("POSEIDON_PERSIST_DOMAIN", "none", 1);
  EXPECT_EQ(apply_persist_domain(PersistDomainMode::kEadr),
            PersistDomain::kNone);
  EXPECT_EQ(persist_domain(), PersistDomain::kNone);
  ::unsetenv("POSEIDON_PERSIST_DOMAIN");
  EXPECT_EQ(apply_persist_domain(PersistDomainMode::kEadr),
            PersistDomain::kEadr);
  // An unparseable override falls through to the explicit mode.
  ::setenv("POSEIDON_PERSIST_DOMAIN", "bogus", 1);
  EXPECT_EQ(apply_persist_domain(PersistDomainMode::kCacheLineFlush),
            PersistDomain::kCacheLineFlush);
  if (prior != nullptr) {
    ::setenv("POSEIDON_PERSIST_DOMAIN", saved.c_str(), 1);
  } else {
    ::unsetenv("POSEIDON_PERSIST_DOMAIN");
  }
  set_persist_domain(before);
}

TEST(FlushBatch, CoalescesAndFencesOnce) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  FlushBatch batch;
  for (int line = 0; line < 4; ++line) {
    auto& w = *reinterpret_cast<std::uint64_t*>(region + line * 64);
    nv_store(w, std::uint64_t{1});
    batch.add(&w, sizeof(w));
  }
  // Nothing fenced yet: every line is dirty, flushes pending at most.
  EXPECT_EQ(sim.dirty_line_count(), 4u);
  batch.commit();
  EXPECT_EQ(sim.dirty_line_count(), 0u);
  EXPECT_EQ(sim.flushed_pending_line_count(), 0u);
  sim.crash(1, 0.0);
  for (int line = 0; line < 4; ++line) {
    EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(region + line * 64), 1u);
  }
}

TEST(FlushBatch, SpillsWhenFullWithoutLosingRanges) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  FlushBatch batch;
  // 16 disjoint (every-other) lines exceed the range capacity; early
  // drains must flush, not drop, the spilled ranges.
  for (int line = 0; line < 32; line += 2) {
    auto& w = *reinterpret_cast<std::uint64_t*>(region + line * 64);
    nv_store(w, std::uint64_t{1});
    batch.add(&w, sizeof(w));
  }
  batch.commit();
  sim.crash(1, 0.0);
  for (int line = 0; line < 32; line += 2) {
    EXPECT_EQ(*reinterpret_cast<std::uint64_t*>(region + line * 64), 1u)
        << "line " << line;
  }
}

TEST(FlushBatch, DestructorCommits) {
  alignas(4096) static char region[4096];
  std::memset(region, 0, sizeof(region));
  SimDomain sim(region, sizeof(region), PersistDomain::kCacheLineFlush);
  auto& word = *reinterpret_cast<std::uint64_t*>(region);
  {
    FlushBatch batch;
    nv_store(word, std::uint64_t{5});
    batch.add(&word, sizeof(word));
  }
  sim.crash(1, 0.0);
  EXPECT_EQ(word, 5u);
}

TEST(CrashPoint, DisarmedIsFree) {
  crash_disarm();
  crash_point("anything");  // must not throw
}

TEST(CrashPoint, ThrowsAtNthMatchingHit) {
  crash_arm("op.", 3, CrashAction::kThrow);
  crash_point("op.a");
  crash_point("other.x");  // prefix mismatch: not counted
  crash_point("op.b");
  EXPECT_THROW(crash_point("op.c"), CrashException);
  crash_disarm();
  EXPECT_EQ(crash_hits(), 3u);
}

TEST(CrashPoint, HitsKeepCountingPastTrigger) {
  crash_arm("", 1, CrashAction::kThrow);
  EXPECT_THROW(crash_point("a"), CrashException);
  crash_point("b");  // after trigger: counted, no throw
  crash_point("c");
  EXPECT_EQ(crash_hits(), 3u);
  crash_disarm();
}

TEST(CrashPoint, ExceptionCarriesPointName) {
  crash_arm("", 1, CrashAction::kThrow);
  try {
    crash_point("alloc.begin");
    FAIL() << "expected CrashException";
  } catch (const CrashException& e) {
    EXPECT_STREQ(e.point, "alloc.begin");
  }
  crash_disarm();
}

}  // namespace
}  // namespace poseidon::pmem
