// Deeper behavioural tests for the baseline models' *distinctive
// mechanisms* — the exact features the paper blames for each allocator's
// scalability and safety problems: PMDK's action log, free-list rebuild
// and AVL coalescing; Makalu's carve/reclaim machinery and conservative
// GC edge cases.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "baselines/makalu_like/makalu_heap.hpp"
#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "common/rng.hpp"
#include "tests/test_util.hpp"

namespace poseidon::baselines {
namespace {

using test::TempHeapPath;

TEST(PmdkActionLog, FreesAreDeferredUntilFlush) {
  // Small frees go into the global action log; until it flushes (capacity
  // or a rebuild), the bitmap still shows the units allocated — the exact
  // staleness that forces PMDK's rescans.
  TempHeapPath path("pm_action");
  auto h = PmdkHeap::create(path.str(), 4 << 20);

  // Fill the heap's 64-byte class completely.
  std::vector<void*> objs;
  for (;;) {
    void* p = h->alloc(48);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  // Free fewer than the action-log capacity: the frees are pending.
  const unsigned nfree = PmdkHeap::kActionLogCap - 4;
  for (unsigned i = 0; i < nfree; ++i) h->free(objs[i]);
  // Allocation pressure flushes the log and rediscovers the units.
  std::set<void*> again;
  for (unsigned i = 0; i < nfree; ++i) {
    void* p = h->alloc(48);
    ASSERT_NE(p, nullptr) << i;
    again.insert(p);
  }
  // Exactly the freed units come back (in some order).
  for (unsigned i = 0; i < nfree; ++i) {
    EXPECT_TRUE(again.count(objs[i])) << i;
  }
}

TEST(PmdkActionLog, CapacityTriggersEagerFlush) {
  TempHeapPath path("pm_action_cap");
  auto h = PmdkHeap::create(path.str(), 4 << 20);
  std::vector<void*> objs;
  for (int i = 0; i < 200; ++i) objs.push_back(h->alloc(48));
  // Free one more than the log holds: the overflow flush applies them all,
  // so every unit is immediately reusable without a rebuild.
  for (unsigned i = 0; i <= PmdkHeap::kActionLogCap; ++i) h->free(objs[i]);
  unsigned reusable = 0;
  std::set<void*> freed(objs.begin(),
                        objs.begin() + PmdkHeap::kActionLogCap + 1);
  for (unsigned i = 0; i <= PmdkHeap::kActionLogCap; ++i) {
    void* p = h->alloc(48);
    if (p != nullptr && freed.count(p)) ++reusable;
  }
  EXPECT_GT(reusable, PmdkHeap::kActionLogCap / 2u);
  for (unsigned i = PmdkHeap::kActionLogCap + 1; i < 200; ++i) {
    h->free(objs[i]);
  }
}

TEST(PmdkAvl, LargeFreeSpaceCoalescesAcrossRebuild) {
  // Free two adjacent large extents; after the lazy AVL rebuild they must
  // satisfy one allocation spanning both.
  TempHeapPath path("pm_coalesce");
  auto h = PmdkHeap::create(path.str(), 32 << 20);
  // Consume everything as 1 MB extents.
  std::vector<void*> objs;
  for (;;) {
    void* p = h->alloc(1 << 20);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  ASSERT_GE(objs.size(), 4u);
  // Free two neighbours (allocation order is address order here).
  h->free(objs[1]);
  h->free(objs[2]);
  // 2 MB only fits if the two 1 MB extents coalesce.
  void* big = h->alloc(2 << 20);
  EXPECT_NE(big, nullptr) << "rebuild must coalesce adjacent free chunks";
  h->free(big);
  h->free(objs[0]);
  for (std::size_t i = 3; i < objs.size(); ++i) h->free(objs[i]);
}

TEST(PmdkArenas, RebuildSharesRunsAcrossArenas) {
  // An arena with an empty bucket rescans the pool and picks up *any* run
  // of its class with free units — including runs another arena carved.
  // That cross-arena sharing (rather than strict per-arena ownership) is
  // exactly why the sequential rebuild is a global affair in PMDK.
  TempHeapPath path("pm_arena");
  auto h = PmdkHeap::create(path.str(), 16 << 20);
  void* mine = h->alloc(48);
  ASSERT_NE(mine, nullptr);
  const auto chunk_of = [](void* p) {
    return reinterpret_cast<std::uintptr_t>(p) / PmdkHeap::kChunkSize;
  };
  unsigned shared = 0;
  for (unsigned i = 0; i < PmdkHeap::kNumArenas; ++i) {
    void* other = nullptr;
    std::thread t([&] { other = h->alloc(48); });
    t.join();
    ASSERT_NE(other, nullptr);
    if (chunk_of(other) == chunk_of(mine)) ++shared;
  }
  EXPECT_GT(shared, 0u)
      << "rebuild should rediscover the existing half-empty run";
}

TEST(MakaluCarve, ExhaustionAcrossClassesIsIndependent) {
  TempHeapPath path("mk_carve");
  auto h = MakaluHeap::create(path.str(), 1 << 20);
  // Exhaust via large blocks...
  std::vector<void*> large;
  for (;;) {
    void* p = h->alloc(100 * 1024);
    if (p == nullptr) break;
    large.push_back(p);
  }
  // ...small allocations may still be served from slack blocks, but
  // eventually fail too, cleanly.
  std::vector<void*> small;
  for (;;) {
    void* p = h->alloc(64);
    if (p == nullptr) break;
    small.push_back(p);
    ASSERT_LT(small.size(), 1u << 20) << "runaway";
  }
  // Free a large block: small allocations resume (carving from the freed
  // extent).
  h->free(large.back());
  large.pop_back();
  EXPECT_NE(h->alloc(64), nullptr);
  for (void* p : large) h->free(p);
}

TEST(MakaluGc, HandlesCyclesWithoutLooping) {
  TempHeapPath path("mk_cycle");
  auto h = MakaluHeap::create(path.str(), 4 << 20);
  char* a = static_cast<char*>(h->alloc(64));
  char* b = static_cast<char*>(h->alloc(64));
  char* c = static_cast<char*>(h->alloc(64));
  // a -> b -> c -> a (cycle), all reachable from the root.
  *reinterpret_cast<std::uint64_t*>(a) = h->data_offset_of(b);
  *reinterpret_cast<std::uint64_t*>(b) = h->data_offset_of(c);
  *reinterpret_cast<std::uint64_t*>(c) = h->data_offset_of(a);
  h->set_root(a);
  const auto st = h->collect();  // must terminate
  EXPECT_EQ(st.marked, 3u);
  EXPECT_EQ(st.swept, 0u);
}

TEST(MakaluGc, SelfReferenceAndUnreachableCycle) {
  TempHeapPath path("mk_cycle2");
  auto h = MakaluHeap::create(path.str(), 4 << 20);
  char* root = static_cast<char*>(h->alloc(64));
  *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(root);  // self
  // An unreachable 2-cycle: leaks that only reachability can find.
  char* x = static_cast<char*>(h->alloc(64));
  char* y = static_cast<char*>(h->alloc(64));
  *reinterpret_cast<std::uint64_t*>(x) = h->data_offset_of(y);
  *reinterpret_cast<std::uint64_t*>(y) = h->data_offset_of(x);
  h->set_root(root);
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 1u);
  EXPECT_EQ(st.swept, 2u) << "unreachable cycle reclaimed";
}

TEST(MakaluGc, RunsAfterReopenAsRecovery) {
  // Makalu's recovery story: crash (no frees recorded anywhere), reopen,
  // collect — leaked objects come back.
  TempHeapPath path("mk_recover");
  std::uint64_t root_off = 0, kept_off = 0;
  {
    auto h = MakaluHeap::create(path.str(), 4 << 20);
    char* root = static_cast<char*>(h->alloc(64));
    char* kept = static_cast<char*>(h->alloc(64));
    for (int i = 0; i < 50; ++i) (void)h->alloc(64);  // leaked
    // Zero root's payload first: conservative GC would chase leftover
    // garbage words that happen to look like offsets.
    std::memset(root, 0, 64);
    *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(kept);
    std::memset(kept, 0xff, 64);
    h->set_root(root);
    root_off = h->data_offset_of(root);
    kept_off = h->data_offset_of(kept);
    // "Crash": destructor runs but nothing was freed.
  }
  auto h = MakaluHeap::open(path.str());
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 2u);
  EXPECT_EQ(st.swept, 50u) << "all leaked objects found by the sweep";
  // The kept object's payload is untouched.
  EXPECT_EQ(h->data_offset_of(h->root()), root_off);
  const auto* kept = static_cast<const unsigned char*>(
      h->data_pointer(kept_off + 16));
  EXPECT_EQ(kept[0], 0xff);
}

TEST(MakaluGc, FalsePointerKeepsGarbageAlive) {
  // The flip side of conservatism: an integer that *looks like* an offset
  // retains garbage — precision the paper's design avoids by not relying
  // on reachability at all.
  TempHeapPath path("mk_false");
  auto h = MakaluHeap::create(path.str(), 4 << 20);
  char* root = static_cast<char*>(h->alloc(64));
  char* garbage = static_cast<char*>(h->alloc(64));
  // Root holds an integer that happens to equal garbage's offset.
  *reinterpret_cast<std::uint64_t*>(root) = h->data_offset_of(garbage);
  h->set_root(root);
  const auto st = h->collect();
  EXPECT_EQ(st.marked, 2u) << "false positive retained";
  EXPECT_EQ(st.swept, 0u);
}

TEST(MakaluReclaim, HalfTheLocalListMovesOnOverflow) {
  TempHeapPath path("mk_half");
  auto h = MakaluHeap::create(path.str(), 8 << 20);
  // Allocate/free kLocalMax+1 blocks: at the overflow point, half the
  // thread-local list migrates to the global reclaim list, so another
  // thread can consume at least a batch of them.
  std::vector<void*> objs;
  for (std::size_t i = 0; i <= MakaluHeap::kLocalMax; ++i) {
    objs.push_back(h->alloc(64));
  }
  for (void* p : objs) h->free(p);
  std::size_t other_got = 0;
  std::set<void*> ours(objs.begin(), objs.end());
  std::thread t([&] {
    for (std::size_t i = 0; i < MakaluHeap::kReclaimBatch; ++i) {
      void* p = h->alloc(64);
      if (p != nullptr && ours.count(p)) ++other_got;
    }
  });
  t.join();
  EXPECT_GT(other_got, 0u);
  EXPECT_LE(other_got, MakaluHeap::kLocalMax);
}

TEST(CrossAllocator, NoOverlapUnderIdenticalChurn) {
  // The same randomized trace runs over all three allocators; live
  // allocations must never overlap in any of them (shadow-model check
  // equivalent to the Poseidon property test, applied to the baselines).
  for (const bool makalu : {false, true}) {
    TempHeapPath path(makalu ? "xchurn_mk" : "xchurn_pm");
    std::unique_ptr<PmdkHeap> pm;
    std::unique_ptr<MakaluHeap> mk;
    if (makalu) {
      mk = MakaluHeap::create(path.str(), 16 << 20);
    } else {
      pm = PmdkHeap::create(path.str(), 16 << 20);
    }
    auto alloc = [&](std::size_t n) {
      return makalu ? mk->alloc(n) : pm->alloc(n);
    };
    auto dealloc = [&](void* p) { makalu ? mk->free(p) : pm->free(p); };

    Xoshiro256 rng(99);
    struct Span {
      char* base;
      std::size_t len;
    };
    std::vector<Span> live;
    for (int i = 0; i < 4000; ++i) {
      if (live.size() < 150 && (live.empty() || (rng.next() & 1))) {
        const std::size_t sz = 1 + rng.next_below(3000);
        auto* p = static_cast<char*>(alloc(sz));
        if (p == nullptr) continue;
        for (const Span& s : live) {
          const bool disjoint = p + sz <= s.base || s.base + s.len <= p;
          ASSERT_TRUE(disjoint)
              << (makalu ? "makalu" : "pmdk") << " overlap at step " << i;
        }
        std::memset(p, 0x11, sz);
        live.push_back({p, sz});
      } else {
        const std::size_t k = rng.next_below(live.size());
        dealloc(live[k].base);
        live[k] = live.back();
        live.pop_back();
      }
    }
    for (const Span& s : live) dealloc(s.base);
  }
}

}  // namespace
}  // namespace poseidon::baselines
