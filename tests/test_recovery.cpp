// Crash-consistency tests (paper §5.8).
//
// Strategy 1 — in-process power-failure simulation: a SimDomain shadows
// the metadata region; a crash point aborts an operation mid-flight; the
// simulator then discards a random subset of unflushed cache lines (an
// unflushed line MAY still reach NVMM via eviction, so survival is a coin
// flip); the heap is reopened and every invariant checked.  Parameterized
// over crash position and line-survival probability.
//
// Strategy 2 — forked-child kill: the child dies with _exit inside the
// allocator; the parent reopens the (file-backed) pool and verifies.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/heap.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/sim_domain.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

// Workload run against the heap until the armed crash point fires.
void churn(Heap& h) {
  std::vector<NvPtr> ps;
  for (int i = 0; i < 30; ++i) {
    NvPtr p = h.alloc(64u << (i % 5));
    if (!p.is_null()) ps.push_back(p);
    if (i % 3 == 2 && !ps.empty()) {
      h.free(ps.back());
      ps.pop_back();
    }
  }
  (void)h.tx_alloc(256, false);
  (void)h.tx_alloc(4096, true);
  h.set_root(ps.empty() ? NvPtr::null() : ps.front());
  NvPtr big = h.alloc(1 << 18);  // forces splits/defrag
  if (!big.is_null()) h.free(big);
}

struct CrashCase {
  std::uint64_t nth;      // which crash-point hit aborts the run
  double survive_prob;    // unflushed-line survival at the failure
};

class SimCrashSweep : public ::testing::TestWithParam<CrashCase> {};

TEST_P(SimCrashSweep, RecoversToConsistentState) {
  const CrashCase c = GetParam();
  TempHeapPath path("simcrash");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;

  // Prepopulate and note committed state.
  std::uint64_t live_committed = 0;
  {
    auto h = Heap::create(path.str(), 2 << 20, o);
    std::vector<NvPtr> keep;
    for (int i = 0; i < 40; ++i) keep.push_back(h->alloc(128));
    for (int i = 0; i < 40; i += 2) h->free(keep[i]);
    live_committed = h->stats().live_blocks;
  }

  bool crashed = false;
  {
    auto h = Heap::open(path.str(), o);
    auto [meta, len] = h->metadata_region();
    pmem::SimDomain sim(meta, len);
    sim.checkpoint();
    pmem::crash_arm("", c.nth, pmem::CrashAction::kThrow);
    try {
      churn(*h);
    } catch (const pmem::CrashException&) {
      crashed = true;
    }
    pmem::crash_disarm();
    if (crashed) {
      // Power fails: unflushed metadata lines survive with probability p.
      sim.crash(c.nth * 1000003 + static_cast<std::uint64_t>(c.survive_prob * 97),
                c.survive_prob);
    }
  }

  auto h = Heap::open(path.str(), o);  // recovery runs here
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why))
      << "nth=" << c.nth << " p=" << c.survive_prob << ": " << why;
  // The heap must be fully operational after recovery.
  NvPtr p = h->alloc(512);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
  // Committed state from before the crashed session is still there.
  EXPECT_GE(h->stats().live_blocks, live_committed > 0 ? 1u : 0u);
}

std::vector<CrashCase> sim_cases() {
  std::vector<CrashCase> cases;
  for (std::uint64_t nth = 1; nth <= 60; nth += 3) {
    for (const double p : {0.0, 0.5, 1.0}) {
      cases.push_back({nth, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimCrashSweep, ::testing::ValuesIn(sim_cases()));

class ForkCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(ForkCrashSweep, ChildKilledMidOperation) {
  const int nth = GetParam();
  TempHeapPath path("forkcrash");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  {
    auto h = Heap::create(path.str(), 2 << 20, o);
    for (int i = 0; i < 20; ++i) (void)h->alloc(256);
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), o);
    pmem::crash_arm("", static_cast<std::uint64_t>(nth),
                    pmem::CrashAction::kExit);
    churn(*h);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  auto h = Heap::open(path.str(), o);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
  EXPECT_GE(h->stats().live_blocks, 20u);  // prepopulated state intact
  NvPtr p = h->alloc(64);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ForkCrashSweep,
                         ::testing::Values(1, 2, 4, 7, 11, 16, 22, 29, 37,
                                           46, 56));

TEST(Recovery, CrashDuringRecoveryIsAlsoRecoverable) {
  // Paper §5.8: replay is idempotent, so a crash *during* recovery (here:
  // while freeing micro-logged addresses) must leave a recoverable heap.
  TempHeapPath path("rec_in_rec");
  Options o = small_opts();
  {
    auto h = Heap::create(path.str(), 2 << 20, o);
    (void)h->tx_alloc(128, false);
    (void)h->tx_alloc(128, false);
    (void)h->tx_alloc(128, false);
    h->tx_leak_open_transaction_for_test();
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Crash at the first micro-log replay step inside Heap::open.
    pmem::crash_arm("recover.", 1, pmem::CrashAction::kExit);
    auto h = Heap::open(path.str(), o);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 42) << "child should die mid-recovery";

  auto h = Heap::open(path.str(), o);  // second recovery completes the job
  EXPECT_TRUE(h->check_invariants());
  EXPECT_EQ(h->stats().live_blocks, 0u) << "all tx allocations reclaimed";
}

TEST(Recovery, WorksUnderRealProtectionMode) {
  // Recovery runs before the protection domain engages, and every
  // recovery write happens on the still-plain mapping; verify the whole
  // crash/recover cycle under mprotect (the strictest mode on this box).
  TempHeapPath path("rec_mprotect");
  Options o;
  o.nsubheaps = 2;
  o.policy = SubheapPolicy::kPerThread;
  o.protect = mpk::ProtectMode::kMprotect;
  {
    auto h = Heap::create(path.str(), 2 << 20, o);
    for (int i = 0; i < 10; ++i) (void)h->alloc(256);
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), o);
    pmem::crash_arm("", 5, pmem::CrashAction::kExit);
    churn(*h);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 42);
  auto h = Heap::open(path.str(), o);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
  EXPECT_EQ(h->protect_mode(), mpk::ProtectMode::kMprotect);
  NvPtr p = h->alloc(64);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

// Multi-shard crash matrix: a two-shard set killed at swept crash points
// while both shards carry singleton churn, uncommitted transactions and
// cross-shard frees; reopening runs one recovery worker per shard.
class ShardForkCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(ShardForkCrashSweep, TwoShardHeapRecoversAfterKill) {
  const int nth = GetParam();
  TempHeapPath path("shard_forkcrash");
  Options o = small_opts(4);
  o.nshards = 2;
  o.shard_policy = ShardPolicy::kPerThread;
  o.policy = SubheapPolicy::kPerThread;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    ASSERT_EQ(h->shard_count(), 2u);
    for (int i = 0; i < 20; ++i) (void)h->alloc(256);
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), o);
    pmem::crash_arm("", static_cast<std::uint64_t>(nth),
                    pmem::CrashAction::kExit);
    // Two workers land on different shards (per-thread routing) and free
    // each other's blocks through a handoff slot, so the kill can strike
    // mid-allocation, mid-transaction or mid-cross-shard-free.
    std::atomic<NvPtr*> handoff{nullptr};
    std::vector<std::thread> ts;
    for (int t = 0; t < 2; ++t) {
      ts.emplace_back([&] {
        for (int i = 0; i < 40; ++i) {
          NvPtr p = h->alloc(64u << (i % 4));
          if (!p.is_null()) {
            NvPtr* prev = handoff.exchange(new NvPtr(p));
            if (prev != nullptr) {
              h->free(*prev);
              delete prev;
            }
          }
          (void)h->tx_alloc(128, i % 2 == 0);
        }
      });
    }
    for (auto& t : ts) t.join();
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  auto h = Heap::open(path.str(), o);
  EXPECT_EQ(h->shard_count(), 2u);
  EXPECT_EQ(h->stats().shards_quarantined, 0u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
  EXPECT_GE(h->stats().live_blocks, 20u);  // prepopulated state intact
  NvPtr p = h->alloc(64);
  EXPECT_FALSE(p.is_null());
  EXPECT_EQ(h->free(p), FreeResult::kOk);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShardForkCrashSweep,
                         ::testing::Values(1, 3, 6, 10, 15, 21, 28));

// Matrix: the identical crash/recover cycle in all three persistence
// domains.  At survive_prob = 1.0 every domain keeps every dirty line, so
// the recovered heaps must agree exactly; at 0.0 the cacheline domain
// loses its unflushed lines while eADR/none (whose SimDomain commits all
// dirty lines at crash) lose nothing — each must still recover to a
// consistent, serving heap.
class DomainMatrix : public ::testing::TestWithParam<double> {};

TEST_P(DomainMatrix, RecoversConsistentlyInEveryDomain) {
  const double survive_prob = GetParam();
  // The env override would beat the per-iteration explicit modes (that is
  // its job); clear it for the matrix and restore afterwards.
  const char* prior_env = std::getenv("POSEIDON_PERSIST_DOMAIN");
  const std::string saved_env = prior_env != nullptr ? prior_env : "";
  ::unsetenv("POSEIDON_PERSIST_DOMAIN");
  const pmem::PersistDomain prior_domain = pmem::persist_domain();

  struct DomainCase {
    pmem::PersistDomainMode mode;
    pmem::PersistDomain domain;
  };
  const DomainCase cases[] = {
      {pmem::PersistDomainMode::kCacheLineFlush,
       pmem::PersistDomain::kCacheLineFlush},
      {pmem::PersistDomainMode::kEadr, pmem::PersistDomain::kEadr},
      {pmem::PersistDomainMode::kNone, pmem::PersistDomain::kNone},
  };

  struct Outcome {
    std::uint64_t live = 0;
    std::uint64_t free_blocks = 0;
    std::uint64_t bytes = 0;
    NvPtr root;
  };
  std::vector<Outcome> outcomes;

  for (const DomainCase& dc : cases) {
    TempHeapPath path("domain_matrix");
    Options o = small_opts(2);
    o.policy = SubheapPolicy::kPerThread;
    o.persist_domain = dc.mode;

    std::uint64_t live_committed = 0;
    {
      auto h = Heap::create(path.str(), 2 << 20, o);
      EXPECT_EQ(pmem::persist_domain(), dc.domain);
      std::vector<NvPtr> keep;
      for (int i = 0; i < 40; ++i) keep.push_back(h->alloc(128));
      for (int i = 0; i < 40; i += 2) h->free(keep[i]);
      live_committed = h->stats().live_blocks;
    }
    {
      auto h = Heap::open(path.str(), o);
      auto [meta, len] = h->metadata_region();
      pmem::SimDomain sim(meta, len);  // models the active domain
      EXPECT_EQ(sim.modeled_domain(), dc.domain);
      sim.checkpoint();
      pmem::crash_arm("", 10, pmem::CrashAction::kThrow);
      try {
        churn(*h);
      } catch (const pmem::CrashException&) {
      }
      pmem::crash_disarm();
      sim.crash(0xD0AA117 + static_cast<std::uint64_t>(survive_prob * 97),
                survive_prob);
    }
    auto h = Heap::open(path.str(), o);
    std::string why;
    EXPECT_TRUE(h->check_invariants(&why))
        << pmem::persist_domain_name(dc.domain) << ": " << why;
    const HeapStats st = h->stats();
    EXPECT_EQ(st.persist_domain, static_cast<std::uint8_t>(dc.domain));
    NvPtr p = h->alloc(512);
    EXPECT_FALSE(p.is_null());
    EXPECT_EQ(h->free(p), FreeResult::kOk);
    EXPECT_GE(st.live_blocks, live_committed > 0 ? 1u : 0u);
    outcomes.push_back(
        {st.live_blocks, st.free_blocks, st.allocated_bytes, h->root()});
  }

  if (survive_prob == 1.0) {
    // All-survive is the same crash in every domain: the same deterministic
    // operations must recover to the same heap.
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
      EXPECT_EQ(outcomes[i].live, outcomes[0].live) << "case " << i;
      EXPECT_EQ(outcomes[i].free_blocks, outcomes[0].free_blocks)
          << "case " << i;
      EXPECT_EQ(outcomes[i].bytes, outcomes[0].bytes) << "case " << i;
      EXPECT_EQ(outcomes[i].root, outcomes[0].root) << "case " << i;
    }
  }

  if (prior_env != nullptr) {
    ::setenv("POSEIDON_PERSIST_DOMAIN", saved_env.c_str(), 1);
  } else {
    ::unsetenv("POSEIDON_PERSIST_DOMAIN");
  }
  pmem::set_persist_domain(prior_domain);
}

INSTANTIATE_TEST_SUITE_P(Sweep, DomainMatrix, ::testing::Values(0.0, 1.0));

TEST(Recovery, RootUpdateIsFailureAtomic) {
  TempHeapPath path("root_atomic");
  Options o = small_opts();
  NvPtr first;
  {
    auto h = Heap::create(path.str(), 1 << 20, o);
    first = h->alloc(64);
    h->set_root(first);
  }
  // Crash in the middle of a root update (after the undo entry, before
  // commit): the old root must win.
  {
    auto h = Heap::open(path.str(), o);
    auto [meta, len] = h->metadata_region();
    pmem::SimDomain sim(meta, len);
    sim.checkpoint();
    NvPtr second = h->alloc(64);
    pmem::crash_arm("root.before_commit", 1, pmem::CrashAction::kThrow);
    EXPECT_THROW(h->set_root(second), pmem::CrashException);
    pmem::crash_disarm();
    sim.crash(99, 0.5);
  }
  auto h = Heap::open(path.str(), o);
  EXPECT_EQ(h->root(), first) << "partial root update must be rolled back";
  EXPECT_TRUE(h->check_invariants());
}

}  // namespace
}  // namespace poseidon::core
