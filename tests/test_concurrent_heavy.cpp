// Heavier concurrency scenarios: transaction contention with fewer
// sub-heaps than threads, multiple heaps used concurrently, registry
// stability under open/close churn, and a mixed singleton/tx/free storm
// audited by the invariant checker.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/heap.hpp"
#include "core/registry.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

TEST(ConcurrentHeavy, MoreTransactionsThanSubheaps) {
  // 2 sub-heaps, 6 threads running transactions: the pinning protocol
  // must serialize cleanly (threads block on tx_mu) and never cross
  // micro logs.
  TempHeapPath path("tx_oversub");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 8 << 20, o);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t);
      for (int i = 0; i < 300; ++i) {
        NvPtr a = h->tx_alloc(64 + rng.next_below(512), false);
        NvPtr b = h->tx_alloc(64, true);
        if (a.is_null() || b.is_null()) {
          errors.fetch_add(1);
          continue;
        }
        if (a.subheap() != b.subheap()) errors.fetch_add(1);
        if (h->free(a) != FreeResult::kOk) errors.fetch_add(1);
        if (h->free(b) != FreeResult::kOk) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(h->stats().live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(ConcurrentHeavy, MultipleHeapsInParallel) {
  // Threads hammer two heaps at once; pointers from one heap must always
  // be rejected by the other, even mid-storm.
  TempHeapPath pa("multi_a"), pb("multi_b");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  auto ha = Heap::create(pa.str(), 4 << 20, o);
  auto hb = Heap::create(pb.str(), 4 << 20, o);
  std::atomic<int> cross_accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t + 10);
      Heap* mine = (t & 1) ? hb.get() : ha.get();
      Heap* other = (t & 1) ? ha.get() : hb.get();
      std::vector<NvPtr> live;
      for (int i = 0; i < 5000; ++i) {
        if (live.size() < 32 && (live.empty() || (rng.next() & 1))) {
          NvPtr p = mine->alloc(64 << rng.next_below(4));
          if (!p.is_null()) {
            if (other->free(p) == FreeResult::kOk) cross_accepted.fetch_add(1);
            live.push_back(p);
          }
        } else {
          const std::size_t k = rng.next_below(live.size());
          mine->free(live[k]);
          live[k] = live.back();
          live.pop_back();
        }
      }
      for (const auto& p : live) mine->free(p);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cross_accepted.load(), 0);
  EXPECT_TRUE(ha->check_invariants());
  EXPECT_TRUE(hb->check_invariants());
  EXPECT_EQ(ha->stats().live_blocks, 0u);
  EXPECT_EQ(hb->stats().live_blocks, 0u);
}

TEST(ConcurrentHeavy, RegistryStableUnderOpenCloseChurn) {
  // One thread repeatedly opens/closes heaps while others resolve
  // pointers through the registry; no lookup may crash or misresolve.
  TempHeapPath stable_path("reg_stable");
  auto stable = Heap::create(stable_path.str(), 2 << 20, small_opts());
  const NvPtr anchor = stable->alloc(64);
  std::memcpy(stable->raw(anchor), "anchored", 9);

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::thread churn([&] {
    for (int i = 0; i < 40; ++i) {
      TempHeapPath p("reg_churn");
      auto h = Heap::create(p.str(), 1 << 20, small_opts());
      (void)h->alloc(64);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load()) {
        Heap* h = registry::by_id(anchor.heap_id);
        if (h == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        const char* s = static_cast<const char*>(h->raw(anchor));
        if (s == nullptr || std::strcmp(s, "anchored") != 0) {
          errors.fetch_add(1);
        }
      }
    });
  }
  churn.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ConcurrentHeavy, MixedStormKeepsInvariants) {
  TempHeapPath path("storm");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 16 << 20, o);
  constexpr int kThreads = 6;
  std::vector<std::atomic<std::uint64_t>> ring(128);
  for (auto& r : ring) r.store(0);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256 rng(t * 7 + 1);
      std::vector<NvPtr> mine;
      for (int i = 0; i < 8000; ++i) {
        switch (rng.next_below(6)) {
          case 0:
          case 1: {  // singleton alloc
            NvPtr p = h->alloc(32u << rng.next_below(9));
            if (!p.is_null()) mine.push_back(p);
            break;
          }
          case 2: {  // tx pair
            NvPtr a = h->tx_alloc(128, false);
            NvPtr b = h->tx_alloc(128, true);
            if (!a.is_null()) mine.push_back(a);
            if (!b.is_null()) mine.push_back(b);
            break;
          }
          case 3: {  // hand off to the ring (cross-thread free)
            if (mine.empty()) break;
            const std::uint64_t prev =
                ring[rng.next_below(ring.size())].exchange(
                    mine.back().packed + 1);
            mine.pop_back();
            if (prev != 0 &&
                h->free(NvPtr{h->heap_id(), prev - 1}) != FreeResult::kOk) {
              errors.fetch_add(1);
            }
            break;
          }
          case 4: {  // own free
            if (mine.empty()) break;
            const std::size_t k = rng.next_below(mine.size());
            if (h->free(mine[k]) != FreeResult::kOk) errors.fetch_add(1);
            mine[k] = mine.back();
            mine.pop_back();
            break;
          }
          default: {  // adversarial free: must never be accepted
            NvPtr bogus = NvPtr::make(
                h->heap_id(), static_cast<std::uint16_t>(rng.next_below(4)),
                (rng.next_below(1u << 22) & ~31u) | 16u);  // misaligned
            if (h->free(bogus) == FreeResult::kOk) errors.fetch_add(1);
          }
        }
      }
      for (const auto& p : mine) {
        if (h->free(p) != FreeResult::kOk) errors.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (auto& r : ring) {
    const std::uint64_t got = r.load();
    if (got != 0) h->free(NvPtr{h->heap_id(), got - 1});
  }
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(h->stats().live_blocks, 0u);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << why;
}

}  // namespace
}  // namespace poseidon::core
