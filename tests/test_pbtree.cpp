// PersistentBTree tests: model equivalence, restart persistence via
// attach, crash-kill durability of acknowledged inserts, and the typed
// pptr<T> object layer.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <map>

#include "common/rng.hpp"
#include "core/pptr.hpp"
#include "index/pbtree.hpp"
#include "tests/test_util.hpp"

namespace poseidon::index {
namespace {

using core::Heap;
using core::NvPtr;
using test::small_opts;
using test::TempHeapPath;

TEST(PBTree, InsertSearchRemoveBasics) {
  TempHeapPath path("pbt_basic");
  auto h = Heap::create(path.str(), 16 << 20, small_opts());
  PersistentBTree t = PersistentBTree::create(*h);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(3, 30));
  EXPECT_TRUE(t.insert(9, 90));
  EXPECT_FALSE(t.insert(5, 55)) << "duplicate rejected";
  EXPECT_EQ(t.search(5), 50u);
  EXPECT_EQ(t.search(3), 30u);
  EXPECT_FALSE(t.search(4).has_value());
  EXPECT_TRUE(t.remove(3));
  EXPECT_FALSE(t.remove(3));
  EXPECT_EQ(t.size(), 2u);
  std::string why;
  EXPECT_TRUE(t.check(&why)) << why;
}

TEST(PBTree, GrowsThroughManySplits) {
  TempHeapPath path("pbt_grow");
  auto h = Heap::create(path.str(), 32 << 20, small_opts());
  PersistentBTree t = PersistentBTree::create(*h);
  for (std::uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_TRUE(t.insert(k * 3, k)) << k;
  }
  EXPECT_GT(t.height(), 2u);
  EXPECT_EQ(t.size(), 20000u);
  for (std::uint64_t k = 1; k <= 20000; ++k) {
    ASSERT_EQ(t.search(k * 3), k) << k;
  }
  std::string why;
  EXPECT_TRUE(t.check(&why)) << why;
}

TEST(PBTree, ModelEquivalenceUnderChurn) {
  TempHeapPath path("pbt_model");
  auto h = Heap::create(path.str(), 32 << 20, small_opts());
  PersistentBTree t = PersistentBTree::create(*h);
  Xoshiro256 rng(23);
  std::map<std::uint64_t, std::uint64_t> model;
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t k = 1 + rng.next_below(4000);
    switch (rng.next_below(5)) {
      case 0:
      case 1: {
        ASSERT_EQ(t.insert(k, k * 7), model.emplace(k, k * 7).second) << i;
        break;
      }
      case 2: {
        const auto got = t.search(k);
        const auto it = model.find(k);
        ASSERT_EQ(got.has_value(), it != model.end()) << i;
        if (got) {
          ASSERT_EQ(*got, it->second);
        }
        break;
      }
      case 3: {
        const auto old = t.exchange(k, k * 9);
        if (old) {
          ASSERT_EQ(*old, model.at(k)) << i;
          model[k] = k * 9;
        } else {
          ASSERT_EQ(model.count(k), 0u) << i;
        }
        break;
      }
      default:
        ASSERT_EQ(t.remove(k), model.erase(k) > 0) << i;
    }
  }
  EXPECT_EQ(t.size(), model.size());
  std::string why;
  EXPECT_TRUE(t.check(&why)) << why;
}

TEST(PBTree, SurvivesReopenViaAttach) {
  TempHeapPath path("pbt_reopen");
  NvPtr handle;
  {
    auto h = Heap::create(path.str(), 16 << 20, small_opts());
    PersistentBTree t = PersistentBTree::create(*h);
    for (std::uint64_t k = 1; k <= 5000; ++k) {
      ASSERT_TRUE(t.insert(k, ~k));
    }
    h->set_root(t.handle());
    handle = t.handle();
  }
  // Fresh process-equivalent: reopen the pool (new mapping) and attach.
  auto h = Heap::open(path.str(), small_opts());
  PersistentBTree t = PersistentBTree::attach(*h, h->root());
  EXPECT_EQ(t.handle(), handle);
  EXPECT_EQ(t.size(), 5000u);
  for (std::uint64_t k = 1; k <= 5000; ++k) {
    ASSERT_EQ(t.search(k), ~k) << k;
  }
  // And it is fully writable after re-attach.
  EXPECT_TRUE(t.insert(999999, 1));
  EXPECT_TRUE(t.remove(1));
  std::string why;
  EXPECT_TRUE(t.check(&why)) << why;
}

TEST(PBTree, AttachRejectsGarbageHandle) {
  TempHeapPath path("pbt_badhandle");
  auto h = Heap::create(path.str(), 4 << 20, small_opts());
  NvPtr junk = h->alloc(512);
  std::memset(h->raw(junk), 0x5a, 512);
  EXPECT_THROW(PersistentBTree::attach(*h, junk), std::runtime_error);
  EXPECT_THROW(PersistentBTree::attach(*h, NvPtr::null()),
               std::runtime_error);
}

TEST(PBTree, ScanWalksLeafChain) {
  TempHeapPath path("pbt_scan");
  auto h = Heap::create(path.str(), 16 << 20, small_opts());
  PersistentBTree t = PersistentBTree::create(*h);
  for (std::uint64_t k = 1; k <= 2000; ++k) t.insert(k * 2, k);
  std::uint64_t vals[128];
  const std::size_t got = t.scan(1000, 100, vals);
  ASSERT_EQ(got, 100u);
  for (std::size_t i = 0; i < got; ++i) {
    EXPECT_EQ(vals[i], 500 + i);
  }
  EXPECT_EQ(t.scan(4000 - 2, 128, vals), 2u);  // clipped at the end
}

class PBTreeCrash : public ::testing::TestWithParam<int> {};

TEST_P(PBTreeCrash, AcknowledgedInsertsSurviveKill) {
  // A child inserts keys 1..N in order, printing progress through a pipe,
  // and is killed at a parameterized point.  Every key the child
  // acknowledged before dying must be present after re-attach.
  const int kill_after = GetParam();
  TempHeapPath path("pbt_crash");
  {
    auto h = Heap::create(path.str(), 16 << 20, small_opts());
    PersistentBTree t = PersistentBTree::create(*h);
    h->set_root(t.handle());
  }
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    close(fds[0]);
    auto h = Heap::open(path.str(), small_opts());
    PersistentBTree t = PersistentBTree::attach(*h, h->root());
    for (std::uint64_t k = 1;; ++k) {
      if (!t.insert(k, k * 11)) _exit(3);
      // Acknowledge durability to the parent, then maybe die abruptly.
      (void)!write(fds[1], &k, sizeof(k));
      if (static_cast<int>(k) == kill_after) _exit(42);
    }
  }
  close(fds[1]);
  std::uint64_t acked = 0, got = 0;
  while (read(fds[0], &got, sizeof(got)) == sizeof(got)) acked = got;
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 42);

  auto h = Heap::open(path.str(), small_opts());
  PersistentBTree t = PersistentBTree::attach(*h, h->root());
  std::string why;
  ASSERT_TRUE(t.check(&why)) << why;
  for (std::uint64_t k = 1; k <= acked; ++k) {
    ASSERT_EQ(t.search(k), k * 11) << "acknowledged key lost: " << k;
  }
  // The tree stays fully usable.
  EXPECT_TRUE(t.insert(1000000, 7));
  EXPECT_EQ(t.search(1000000), 7u);
}

INSTANTIATE_TEST_SUITE_P(KillPoints, PBTreeCrash,
                         ::testing::Values(1, 17, 30, 31, 100, 450, 2000));

TEST(Pptr, TypedRoundTrip) {
  TempHeapPath path("pptr_rt");
  auto h = Heap::create(path.str(), 4 << 20, small_opts());
  struct Point {
    double x, y;
  };
  auto p = core::make_persistent<Point>(*h, Point{1.5, -2.5});
  ASSERT_FALSE(p.is_null());
  EXPECT_EQ(p.get(*h)->x, 1.5);
  EXPECT_EQ(p->y, -2.5);  // registry-resolved access
  EXPECT_EQ(core::destroy_persistent(*h, p), core::FreeResult::kOk);
  EXPECT_EQ(core::destroy_persistent(*h, p), core::FreeResult::kDoubleFree);
}

TEST(Pptr, LinkedStructurePersistsAcrossReopen) {
  TempHeapPath path("pptr_list");
  struct Node {
    core::pptr<Node> next;
    std::uint64_t value;
  };
  {
    auto h = Heap::create(path.str(), 4 << 20, small_opts());
    core::pptr<Node> head;
    for (std::uint64_t i = 5; i-- > 0;) {
      auto n = core::make_persistent<Node>(*h);
      n.get(*h)->next = head;
      n.get(*h)->value = i;
      pmem::persist(n.get(*h), sizeof(Node));
      head = n;
    }
    h->set_root(head.nvptr());
  }
  auto h = Heap::open(path.str(), small_opts());
  std::uint64_t expect = 0;
  for (core::pptr<Node> p{h->root()}; !p.is_null();
       p = p.get(*h)->next) {
    EXPECT_EQ(p.get(*h)->value, expect++);
  }
  EXPECT_EQ(expect, 5u);
}

TEST(Pptr, TxVariantReclaimedWithoutCommit) {
  TempHeapPath path("pptr_tx");
  struct Blob {
    char bytes[100];
  };
  {
    auto h = Heap::create(path.str(), 4 << 20, small_opts());
    auto a = core::make_persistent_tx<Blob>(*h, /*is_end=*/false);
    auto b = core::make_persistent_tx<Blob>(*h, /*is_end=*/false);
    ASSERT_FALSE(a.is_null() || b.is_null());
    h->tx_leak_open_transaction_for_test();
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->stats().live_blocks, 0u) << "uncommitted typed allocations "
                                           "reclaimed by recovery";
}

TEST(Pptr, TxCommitWithoutAllocation) {
  TempHeapPath path("pptr_txcommit");
  struct Blob {
    char bytes[64];
  };
  {
    auto h = Heap::create(path.str(), 4 << 20, small_opts());
    auto a = core::make_persistent_tx<Blob>(*h, /*is_end=*/false);
    ASSERT_FALSE(a.is_null());
    // Initialize and "link" (here: root), then commit explicitly — the
    // alloc-init-link-commit ordering tx_commit exists for.
    h->set_root(a.nvptr());
    h->tx_commit();
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->stats().live_blocks, 1u) << "committed allocation kept";
  EXPECT_NE(h->raw(h->root()), nullptr);
}

}  // namespace
}  // namespace poseidon::index
