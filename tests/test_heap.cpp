// Heap-level API tests: creation/open, persistent pointers, pointer
// conversion, root object, sub-heap policies, fallback, stats, hole
// punching, the registry and the C API of Fig. 5.
#include <gtest/gtest.h>

#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/c_api.h"
#include "core/heap.hpp"
#include "core/registry.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

TEST(Heap, CreateRejectsExistingFile) {
  TempHeapPath path("create_twice");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  EXPECT_THROW(Heap::create(path.str(), 1 << 20, small_opts()),
               std::system_error);
}

TEST(Heap, OpenRejectsGarbageFile) {
  TempHeapPath path("garbage");
  {
    pmem::Pool p = pmem::Pool::create(path.str(), 1 << 20);
    std::memset(p.data(), 0x5a, 4096);
  }
  EXPECT_THROW(Heap::open(path.str(), small_opts()), std::runtime_error);
}

TEST(Heap, OpenOrCreateIsIdempotent) {
  TempHeapPath path("ooc");
  std::uint64_t id;
  {
    auto h = Heap::open_or_create(path.str(), 1 << 20, small_opts());
    id = h->heap_id();
  }
  auto h = Heap::open_or_create(path.str(), 1 << 20, small_opts());
  EXPECT_EQ(h->heap_id(), id) << "reopened, not recreated";
}

TEST(Heap, CapacityAtLeastRequested) {
  TempHeapPath path("capacity");
  auto h = Heap::create(path.str(), 3 << 20, small_opts(2));
  EXPECT_GE(h->user_capacity(), 3u << 20);
  EXPECT_EQ(h->nsubheaps(), 2u);
}

TEST(Heap, OptionsValidated) {
  TempHeapPath path("badopts");
  Options bad = small_opts();
  bad.level0_slots = 100;  // not a multiple of 256
  EXPECT_THROW(Heap::create(path.str(), 1 << 20, bad), std::invalid_argument);
  bad = small_opts();
  bad.nsubheaps = kMaxSubheaps + 1;
  EXPECT_THROW(Heap::create(path.str(), 1 << 20, bad), std::invalid_argument);
}

TEST(Heap, AllocDistinctWritableBlocks) {
  TempHeapPath path("alloc");
  auto h = Heap::create(path.str(), 4 << 20, small_opts());
  std::set<void*> raws;
  for (int i = 0; i < 100; ++i) {
    NvPtr p = h->alloc(64);
    ASSERT_FALSE(p.is_null());
    void* raw = h->raw(p);
    ASSERT_NE(raw, nullptr);
    EXPECT_TRUE(raws.insert(raw).second) << "overlapping allocation";
    std::memset(raw, i, 64);
  }
  EXPECT_TRUE(h->check_invariants());
}

TEST(Heap, RawRoundTripsThroughFromRaw) {
  TempHeapPath path("roundtrip");
  auto h = Heap::create(path.str(), 4 << 20, small_opts(2));
  for (const std::uint64_t size : {32u, 300u, 5000u}) {
    NvPtr p = h->alloc(size);
    ASSERT_FALSE(p.is_null());
    EXPECT_EQ(h->from_raw(h->raw(p)), p);
  }
}

TEST(Heap, RawRejectsForeignAndNull) {
  TempHeapPath path("rawbad");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  EXPECT_EQ(h->raw(NvPtr::null()), nullptr);
  EXPECT_EQ(h->raw(NvPtr::make(h->heap_id() + 1, 0, 0)), nullptr);
  EXPECT_EQ(h->raw(NvPtr::make(h->heap_id(), 40, 0)), nullptr);  // bad subheap
  int x = 0;
  EXPECT_EQ(h->from_raw(&x), NvPtr::null());
}

TEST(Heap, FreeValidation) {
  TempHeapPath path("freeval");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  NvPtr p = h->alloc(128);
  EXPECT_EQ(h->free(NvPtr::null()), FreeResult::kInvalidPointer);
  EXPECT_EQ(h->free(NvPtr::make(h->heap_id() + 1, 0, 0)),
            FreeResult::kInvalidPointer);
  EXPECT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->free(p), FreeResult::kDoubleFree);
}

TEST(Heap, PersistenceAcrossReopen) {
  TempHeapPath path("persist");
  NvPtr saved;
  std::uint64_t id;
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    saved = h->alloc(256);
    std::memcpy(h->raw(saved), "durable data here", 18);
    h->set_root(saved);
    id = h->heap_id();
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->heap_id(), id);
  NvPtr root = h->root();
  EXPECT_EQ(root, saved);
  EXPECT_STREQ(static_cast<const char*>(h->raw(root)), "durable data here");
  // The block is still tracked as allocated: freeing works exactly once.
  EXPECT_EQ(h->free(root), FreeResult::kOk);
  EXPECT_EQ(h->free(root), FreeResult::kDoubleFree);
}

TEST(Heap, RootDefaultsToNull) {
  TempHeapPath path("rootnull");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  EXPECT_TRUE(h->root().is_null());
  NvPtr p = h->alloc(64);
  h->set_root(p);
  EXPECT_EQ(h->root(), p);
  h->set_root(NvPtr::null());
  EXPECT_TRUE(h->root().is_null());
}

TEST(Heap, FallbackSpillsToOtherSubheaps) {
  TempHeapPath path("fallback");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kFixed0;  // every alloc targets sub-heap 0
  o.allow_fallback = true;
  auto h = Heap::create(path.str(), 4 << 20, o);
  const std::uint64_t per_subheap = h->user_capacity() / 4;
  std::vector<NvPtr> ptrs;
  // Allocate more than one sub-heap can hold.
  for (std::uint64_t got = 0; got < 2 * per_subheap; got += 1 << 16) {
    NvPtr p = h->alloc(1 << 16);
    ASSERT_FALSE(p.is_null()) << "fallback should spill";
    ptrs.push_back(p);
  }
  std::set<unsigned> used;
  for (const auto& p : ptrs) used.insert(p.subheap());
  EXPECT_GT(used.size(), 1u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(Heap, NoFallbackFailsWhenLocalFull) {
  TempHeapPath path("nofallback");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kFixed0;
  o.allow_fallback = false;
  auto h = Heap::create(path.str(), 2 << 20, o);
  const std::uint64_t per_subheap = h->user_capacity() / 2;
  NvPtr whole = h->alloc(per_subheap);
  ASSERT_FALSE(whole.is_null());
  EXPECT_TRUE(h->alloc(1 << 16).is_null());
}

TEST(Heap, PerThreadPolicySpreadsSubheaps) {
  TempHeapPath path("perthread");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 4 << 20, o);
  std::set<unsigned> used;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      NvPtr p = h->alloc(64);
      std::lock_guard<std::mutex> lk(mu);
      used.insert(p.subheap());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GT(used.size(), 1u) << "threads should land on different sub-heaps";
}

TEST(Heap, StatsAggregateAcrossSubheaps) {
  TempHeapPath path("stats");
  Options o = small_opts(2);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 2 << 20, o);
  std::vector<NvPtr> ps;
  for (int i = 0; i < 10; ++i) ps.push_back(h->alloc(64));
  const auto s = h->stats();
  EXPECT_EQ(s.live_blocks, 10u);
  EXPECT_EQ(s.allocated_bytes, 640u);
  EXPECT_EQ(s.nsubheaps, 2u);
  for (const auto& p : ps) h->free(p);
  EXPECT_EQ(h->stats().live_blocks, 0u);
}

TEST(Heap, MetadataRegionIsPageAlignedPrefix) {
  TempHeapPath path("metaregion");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  auto [base, len] = h->metadata_region();
  EXPECT_NE(base, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % kPageSize, 0u);
  EXPECT_EQ(len % kPageSize, 0u);
  EXPECT_GT(len, sizeof(SuperBlock));
}

TEST(Heap, HolePunchingShrinksMetadataFootprint) {
  TempHeapPath path("punch");
  Options o = small_opts(1);
  o.level0_slots = 256;  // tiny level 0 -> extensions happen quickly
  auto h = Heap::create(path.str(), 4 << 20, o);
  // Fill with min-size blocks to force hash levels to grow...
  std::vector<NvPtr> ps;
  for (int i = 0; i < 30000; ++i) {
    NvPtr p = h->alloc(32);
    if (p.is_null()) break;
    ps.push_back(p);
  }
  const std::uint64_t grown = h->file_allocated_bytes();
  // ...then free everything and allocate the whole region, which merges
  // all records away and lets the top levels be punched.
  for (const auto& p : ps) ASSERT_EQ(h->free(p), FreeResult::kOk);
  NvPtr whole = h->alloc(h->user_capacity());
  ASSERT_FALSE(whole.is_null());
  EXPECT_LT(h->file_allocated_bytes(), grown)
      << "empty hash levels should be hole-punched back";
  EXPECT_TRUE(h->check_invariants());
}

TEST(Heap, RegistryFindsHeapByIdAndAddress) {
  TempHeapPath path("registry");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  EXPECT_EQ(registry::by_id(h->heap_id()), h.get());
  EXPECT_EQ(registry::by_id(h->heap_id() + 1), nullptr);
  NvPtr p = h->alloc(64);
  EXPECT_EQ(registry::by_address(h->raw(p)), h.get());
  int stack_var = 0;
  EXPECT_EQ(registry::by_address(&stack_var), nullptr);
  h.reset();
  EXPECT_EQ(registry::by_id(h ? h->heap_id() : 0), nullptr);
}

TEST(Heap, TwoHeapsCoexist) {
  TempHeapPath pa("multi_a"), pb("multi_b");
  auto ha = Heap::create(pa.str(), 1 << 20, small_opts());
  auto hb = Heap::create(pb.str(), 1 << 20, small_opts());
  EXPECT_NE(ha->heap_id(), hb->heap_id());
  NvPtr a = ha->alloc(64);
  NvPtr b = hb->alloc(64);
  // Cross-heap operations are rejected.
  EXPECT_EQ(ha->free(b), FreeResult::kInvalidPointer);
  EXPECT_EQ(hb->free(a), FreeResult::kInvalidPointer);
  EXPECT_EQ(ha->raw(b), nullptr);
  EXPECT_EQ(ha->free(a), FreeResult::kOk);
  EXPECT_EQ(hb->free(b), FreeResult::kOk);
}

TEST(CApi, Fig5RoundTrip) {
  TempHeapPath path("capi");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);

  nvmptr_t p = poseidon_alloc(heap, 100);
  ASSERT_FALSE(nvmptr_is_null(p));
  void* raw = poseidon_get_rawptr(p);
  ASSERT_NE(raw, nullptr);
  std::memcpy(raw, "fig5", 5);

  const nvmptr_t back = poseidon_get_nvmptr(raw);
  EXPECT_EQ(back.heap_id, p.heap_id);
  EXPECT_EQ(back.packed, p.packed);

  poseidon_set_root(heap, p);
  const nvmptr_t root = poseidon_get_root(heap);
  EXPECT_EQ(root.packed, p.packed);

  EXPECT_EQ(poseidon_free(heap, p), 0);
  EXPECT_NE(poseidon_free(heap, p), 0);  // double free rejected
  poseidon_finish(heap);
}

TEST(CApi, InitFailureReturnsNull) {
  EXPECT_EQ(poseidon_init("/nonexistent_dir/x.heap", 1 << 20), nullptr);
}

TEST(CApi, TxAllocCommits) {
  TempHeapPath path("capitx");
  heap_t* heap = poseidon_init(path.c_str(), 1 << 20);
  ASSERT_NE(heap, nullptr);
  const nvmptr_t a = poseidon_tx_alloc(heap, 64, false);
  const nvmptr_t b = poseidon_tx_alloc(heap, 64, true);
  EXPECT_FALSE(nvmptr_is_null(a));
  EXPECT_FALSE(nvmptr_is_null(b));
  EXPECT_EQ(poseidon_free(heap, a), 0);
  EXPECT_EQ(poseidon_free(heap, b), 0);
  poseidon_finish(heap);
}

}  // namespace
}  // namespace poseidon::core
