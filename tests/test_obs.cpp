// Observability subsystem tests (src/obs): histogram bucket-boundary
// exactness, multi-threaded counter accuracy, the flight-recorder ring
// (wrap, re-attach, torn slots), heap integration, exporter output, and
// the crash-point sweeps asserting a persistent flight ring is replayable
// after recovery with the last pre-crash events intact.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/c_api.h"
#include "core/heap.hpp"
#include "obs/exporter.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "pmem/crashpoint.hpp"
#include "pmem/sim_domain.hpp"
#include "tests/test_util.hpp"

namespace poseidon::obs {
namespace {

using core::Heap;
using core::NvPtr;
using core::Options;
using test::small_opts;
using test::TempHeapPath;

// --- pillar 1: metrics ---------------------------------------------------

#if POSEIDON_OBS_ENABLED

TEST(Histogram, Log2BucketBoundariesAreExact) {
  Histogram h;
  // Bucket b covers [2^b, 2^(b+1)): both edges must land exactly.
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    h.record(std::uint64_t{1} << b);                      // lower edge
    if (b > 0) h.record((std::uint64_t{1} << b) - 1);     // below the edge
  }
  for (unsigned b = 0; b < kHistBuckets; ++b) {
    // Bucket b saw its own lower edge 2^b plus its upper edge 2^(b+1)-1
    // (recorded by iteration b+1) — exactly two values, except 63, whose
    // upper edge 2^64-1 was never recorded.
    const std::uint64_t expect = b == 63 ? 1 : 2;
    EXPECT_EQ(h.bucket(b), expect) << "bucket " << b;
  }
  const std::uint64_t before = h.count();
  h.record(0);  // zero is defined to land in bucket 0
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_EQ(h.count(), before + 1);  // every record lands in exactly one
  h.record(~std::uint64_t{0});
  EXPECT_EQ(h.bucket(63), 2u);
}

TEST(Histogram, LinearAddClampsToLastBucket) {
  Histogram h;
  h.add(0);
  h.add(kHistBuckets - 1);
  h.add(kHistBuckets);      // clamped
  h.add(kHistBuckets + 7);  // clamped
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(kHistBuckets - 1), 3u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.used_buckets(), kHistBuckets);
}

TEST(Metrics, CountersAreExactAcrossThreads) {
  Counter c;
  Histogram h;
  constexpr unsigned kThreads = 8;
  constexpr std::uint64_t kPerThread = 200000;
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(i % 4096);
      }
      c.inc(42);
    });
  }
  for (auto& t : ts) t.join();
  // Shards may be contended (more threads than kShards is legal) but no
  // increment may ever be lost.
  EXPECT_EQ(c.read(), kThreads * (kPerThread + 42));
  EXPECT_EQ(h.count(), std::uint64_t{kThreads} * kPerThread);
}

TEST(Metrics, LatencySamplingFiresOncePerPeriod) {
  // Per-thread deterministic 1-in-64: count over whole periods is exact.
  std::thread([] {
    unsigned fired = 0;
    for (unsigned i = 0; i < 10 * kLatencySamplePeriod; ++i) {
      if (latency_sample_tick()) ++fired;
    }
    EXPECT_EQ(fired, 10u);
  }).join();
}

TEST(Metrics, CycleTimerNullptrIsANoop) {
  Histogram h;
  { CycleTimer t(static_cast<Histogram*>(nullptr)); }
  EXPECT_EQ(h.count(), 0u);
  { CycleTimer t(&h); }
  EXPECT_EQ(h.count(), 1u);
  { CycleTimer t(h); }
  EXPECT_EQ(h.count(), 2u);
}

#endif  // POSEIDON_OBS_ENABLED

// --- pillar 2: flight ring (placement-independent unit tests) ------------

TEST(FlightRing, RecordsAndSnapshotsInOrder) {
  std::vector<FlightEvent> mem(16);
  FlightRing ring(mem.data(), mem.size(), /*persistent=*/false, 3);
  ring.record(FlightOp::kAlloc, 2, 0x100);
  ring.record(FlightOp::kFree, 0, 0x100);
  ring.record(FlightOp::kDefrag, 5, 0);
  const auto evs = ring.snapshot();
  ASSERT_EQ(evs.size(), 3u);
  EXPECT_EQ(evs[0].seq, 1u);
  EXPECT_EQ(evs[0].op, static_cast<std::uint16_t>(FlightOp::kAlloc));
  EXPECT_EQ(evs[0].size_class, 2u);
  EXPECT_EQ(evs[0].arg, 0x100u);
  EXPECT_EQ(evs[0].subheap, 3u);
  EXPECT_EQ(evs[2].seq, 3u);
  EXPECT_EQ(evs[2].op, static_cast<std::uint16_t>(FlightOp::kDefrag));
}

TEST(FlightRing, WrapKeepsOnlyTheNewestCapacityEvents) {
  std::vector<FlightEvent> mem(8);
  FlightRing ring(mem.data(), mem.size(), /*persistent=*/false, 0);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    ring.record(FlightOp::kAlloc, 0, i);
  }
  const auto evs = ring.snapshot();
  ASSERT_EQ(evs.size(), 8u);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, 13 + i);  // oldest surviving first
    EXPECT_EQ(evs[i].arg, 13 + i);
  }
}

TEST(FlightRing, ReattachContinuesSequenceNumbers) {
  std::vector<FlightEvent> mem(8);
  {
    FlightRing ring(mem.data(), mem.size(), false, 0);
    for (int i = 0; i < 5; ++i) ring.record(FlightOp::kAlloc, 0, 7);
  }
  FlightRing again(mem.data(), mem.size(), false, 0);
  EXPECT_EQ(again.head(), 5u);
  again.record(FlightOp::kOpen, 0, 0);
  const auto evs = again.snapshot();
  ASSERT_EQ(evs.size(), 6u);
  EXPECT_EQ(evs.back().seq, 6u);
  EXPECT_EQ(evs.back().op, static_cast<std::uint16_t>(FlightOp::kOpen));
}

TEST(FlightRing, TornSlotsAreSkipped) {
  std::vector<FlightEvent> mem(8);
  FlightRing ring(mem.data(), mem.size(), false, 0);
  for (int i = 0; i < 6; ++i) ring.record(FlightOp::kAlloc, 0, i);
  mem[2].seq = 0;    // half-written slot (writer died pre-publish)
  mem[4].seq = 999;  // stale/garbage seq that the head does not imply
  const auto evs = ring.snapshot();
  ASSERT_EQ(evs.size(), 4u);
  for (const auto& e : evs) {
    EXPECT_NE(e.seq, 3u);
    EXPECT_NE(e.seq, 5u);
  }
}

TEST(FlightRing, ConcurrentRecordersLoseNothingBeyondCapacity) {
  std::vector<FlightEvent> mem(kFlightRingCap);
  FlightRing ring(mem.data(), mem.size(), false, 0);
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kEach = 100;  // total 400 < capacity: no wrap
  std::vector<std::thread> ts;
  for (unsigned t = 0; t < kThreads; ++t) {
    ts.emplace_back([&ring, t] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        ring.record(FlightOp::kAlloc, static_cast<std::uint16_t>(t), i);
      }
    });
  }
  for (auto& t : ts) t.join();
  const auto evs = ring.snapshot();
  ASSERT_EQ(evs.size(), kThreads * kEach);
  for (std::size_t i = 0; i < evs.size(); ++i) {
    EXPECT_EQ(evs[i].seq, i + 1);  // claims are dense, snapshot sorted
  }
}

// --- heap integration ----------------------------------------------------

#if POSEIDON_OBS_ENABLED

TEST(HeapObs, CountersMatchOperationsExactly) {
  TempHeapPath path("obs_counters");
  auto h = Heap::create(path.str(), 4 << 20, small_opts(1));
  const auto& m = h->metrics();
  std::vector<NvPtr> ps;
  for (int i = 0; i < 10; ++i) ps.push_back(h->alloc(100));
  EXPECT_EQ(m.alloc_calls.read(), 10u);
  EXPECT_EQ(m.alloc_fails.read(), 0u);
  EXPECT_EQ(m.alloc_size_class.count(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(h->free(ps[i]), core::FreeResult::kOk);
  EXPECT_EQ(h->free(NvPtr::null()), core::FreeResult::kInvalidPointer);
  EXPECT_EQ(h->free(ps[0]), core::FreeResult::kDoubleFree);
  EXPECT_EQ(m.free_calls.read(), 7u);
  EXPECT_EQ(m.free_rejects.read(), 2u);
  (void)h->tx_alloc(256, false);
  (void)h->tx_alloc(256, true);
  EXPECT_EQ(m.tx_alloc_calls.read(), 2u);
  EXPECT_EQ(m.tx_commits.read(), 1u);
  EXPECT_EQ(m.micro_appends.read(), 2u);
}

TEST(HeapObs, StatsCacheCountersComeFromTheRegistry) {
  TempHeapPath path("obs_cache_stats");
  Options o = small_opts(1);
  o.thread_cache = true;
  auto h = Heap::create(path.str(), 4 << 20, o);
  for (int i = 0; i < 32; ++i) (void)h->alloc(64);
  const auto s = h->stats();
  const auto& m = h->metrics();
  EXPECT_EQ(s.cache_hits, m.cache_hits.read());
  EXPECT_EQ(s.cache_misses, m.cache_misses.read());
  EXPECT_EQ(s.cache_flushes, m.cache_flushes.read());
  EXPECT_GE(s.cache_misses, 1u);  // first alloc can never hit
  EXPECT_EQ(s.cache_hits + s.cache_misses, 32u);
}

TEST(HeapObs, FlightEventsCoverTheOperationMix) {
  TempHeapPath path("obs_flight");
  auto h = Heap::create(path.str(), 4 << 20, small_opts(1));
  ASSERT_EQ(h->flight_mode(), FlightMode::kVolatile);  // the default
  NvPtr p = h->alloc(500);
  (void)h->tx_alloc(128, true);
  EXPECT_EQ(h->free(p), core::FreeResult::kOk);
  const auto evs = h->flight_events();
  auto has = [&evs](FlightOp op) {
    return std::any_of(evs.begin(), evs.end(), [op](const FlightEvent& e) {
      return e.op == static_cast<std::uint16_t>(op);
    });
  };
  EXPECT_TRUE(has(FlightOp::kOpen));
  EXPECT_TRUE(has(FlightOp::kAlloc));
  EXPECT_TRUE(has(FlightOp::kTxAlloc));
  EXPECT_TRUE(has(FlightOp::kTxCommit));
  EXPECT_TRUE(has(FlightOp::kFree));
}

TEST(HeapObs, FlightModeOffRecordsNothing) {
  TempHeapPath path("obs_flight_off");
  Options o = small_opts(1);
  o.flight = FlightMode::kOff;
  auto h = Heap::create(path.str(), 4 << 20, o);
  (void)h->alloc(100);
  EXPECT_EQ(h->flight_mode(), FlightMode::kOff);
  EXPECT_TRUE(h->flight_events().empty());
  EXPECT_EQ(h->metrics().alloc_calls.read(), 1u);  // metrics still on
}

TEST(HeapObs, PersistentRingSurvivesCleanReopen) {
  TempHeapPath path("obs_flight_reopen");
  Options o = small_opts(1);
  o.flight = FlightMode::kPersistent;
  std::uint64_t max_seq = 0;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    for (int i = 0; i < 8; ++i) (void)h->alloc(200);
    for (const auto& e : h->flight_events()) max_seq = std::max(max_seq, e.seq);
    ASSERT_GT(max_seq, 0u);
  }
  auto h = Heap::open(path.str(), o);
  // Previous session's events were snapshotted before recovery...
  const auto& post = h->flight_postmortem();
  ASSERT_FALSE(post.empty());
  EXPECT_EQ(post.back().seq, max_seq);
  // ...and the re-attached ring numbers this session's events after them.
  std::uint64_t new_max = 0;
  for (const auto& e : h->flight_events()) new_max = std::max(new_max, e.seq);
  EXPECT_GT(new_max, max_seq);
}

// --- exporters -----------------------------------------------------------

TEST(Exporter, JsonAndTextContainTheRegistry) {
  TempHeapPath path("obs_export");
  Options o = small_opts(1);
  o.flight = FlightMode::kPersistent;
  auto h = Heap::create(path.str(), 4 << 20, o);
  (void)h->alloc(256);
  const std::string j = Exporter(*h).json();
  for (const char* key :
       {"\"heap\"", "\"stats\"", "\"counters\"", "\"alloc_calls\"",
        "\"histograms\"", "\"size_classes\"", "\"flight\"",
        "\"mpk_window_switches\"", "\"mode\":\"persistent\""}) {
    EXPECT_NE(j.find(key), std::string::npos) << "missing " << key;
  }
  // Cheap well-formedness check: braces and brackets balance.
  EXPECT_EQ(std::count(j.begin(), j.end(), '{'),
            std::count(j.begin(), j.end(), '}'));
  EXPECT_EQ(std::count(j.begin(), j.end(), '['),
            std::count(j.begin(), j.end(), ']'));
  const std::string t = Exporter(*h).text();
  EXPECT_NE(t.find("alloc_calls"), std::string::npos);
  EXPECT_NE(t.find("flight"), std::string::npos);
}

TEST(Exporter, CApiDumpsFollowTheSnprintfContract) {
  TempHeapPath path("obs_capi");
  heap_t* h = poseidon_init(path.c_str(), 8 << 20);
  ASSERT_NE(h, nullptr);
  (void)poseidon_alloc(h, 128);

  EXPECT_EQ(poseidon_stats_dump(nullptr, nullptr, 0), -1);
  char tiny[4];
  EXPECT_EQ(poseidon_flight_dump(nullptr, tiny, sizeof tiny), -1);

  const long need = poseidon_stats_dump(h, nullptr, 0);  // size query
  ASSERT_GT(need, 0);
  std::vector<char> buf(static_cast<std::size_t>(need) + 1);
  EXPECT_EQ(poseidon_stats_dump(h, buf.data(), buf.size()), need);
  EXPECT_EQ(static_cast<long>(std::strlen(buf.data())), need);
  EXPECT_EQ(buf[0], '{');

  // Truncation still NUL-terminates and reports the full size.
  char small[10];
  EXPECT_EQ(poseidon_stats_dump(h, small, sizeof small), need);
  EXPECT_EQ(std::strlen(small), sizeof(small) - 1);

  EXPECT_GT(poseidon_flight_dump(h, nullptr, 0), 0);
  poseidon_finish(h);
}

// --- crash-point sweeps: the persistent ring as a post-mortem ------------

// Traffic whose flight events we expect to find after the crash.
void flight_churn(Heap& h) {
  std::vector<NvPtr> ps;
  for (int i = 0; i < 25; ++i) {
    NvPtr p = h.alloc(64u << (i % 4));
    if (!p.is_null()) ps.push_back(p);
    if (i % 4 == 3 && !ps.empty()) {
      h.free(ps.back());
      ps.pop_back();
    }
  }
  (void)h.tx_alloc(512, true);
}

Options flight_opts() {
  Options o = small_opts(1);
  o.flight = FlightMode::kPersistent;
  return o;
}

class FlightSimCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlightSimCrashSweep, PostmortemSurvivesSimulatedPowerFailure) {
  const int nth = GetParam();
  TempHeapPath path("obs_simcrash");
  const Options o = flight_opts();
  std::uint64_t committed_seq = 0;  // events durable before the crash run
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    for (int i = 0; i < 10; ++i) (void)h->alloc(128);
    for (const auto& e : h->flight_events()) {
      committed_seq = std::max(committed_seq, e.seq);
    }
  }
  {
    auto h = Heap::open(path.str(), o);
    auto [meta, len] = h->metadata_region();
    pmem::SimDomain sim(meta, len);
    sim.checkpoint();
    pmem::crash_arm("", static_cast<std::uint64_t>(nth),
                    pmem::CrashAction::kThrow);
    bool crashed = false;
    try {
      flight_churn(*h);
    } catch (const pmem::CrashException&) {
      crashed = true;
    }
    pmem::crash_disarm();
    if (crashed) sim.crash(static_cast<std::uint64_t>(nth) * 7919, 0.5);
  }

  auto h = Heap::open(path.str(), o);  // recovery replays here
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
  const auto& post = h->flight_postmortem();
  ASSERT_FALSE(post.empty()) << "nth=" << nth;
  // The ring is outside the simulated metadata domain (like the cache
  // logs): everything recorded before the crash must still be there, in
  // order, ending at or after the last event known durable pre-crash.
  std::uint64_t max_seq = 0;
  for (const auto& e : post) {
    EXPECT_GT(e.seq, max_seq) << "post-mortem must be seq-ordered";
    max_seq = e.seq;
  }
  EXPECT_GE(max_seq, committed_seq) << "nth=" << nth;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlightSimCrashSweep,
                         ::testing::Values(1, 3, 6, 10, 15, 21, 28, 36));

class FlightForkCrashSweep : public ::testing::TestWithParam<int> {};

TEST_P(FlightForkCrashSweep, PostmortemSurvivesKilledChild) {
  const int nth = GetParam();
  TempHeapPath path("obs_forkcrash");
  const Options o = flight_opts();
  std::uint64_t committed_seq = 0;
  {
    auto h = Heap::create(path.str(), 4 << 20, o);
    for (int i = 0; i < 10; ++i) (void)h->alloc(128);
    for (const auto& e : h->flight_events()) {
      committed_seq = std::max(committed_seq, e.seq);
    }
  }
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    auto h = Heap::open(path.str(), o);
    pmem::crash_arm("", static_cast<std::uint64_t>(nth),
                    pmem::CrashAction::kExit);
    flight_churn(*h);
    _exit(0);
  }
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));

  auto h = Heap::open(path.str(), o);
  std::string why;
  EXPECT_TRUE(h->check_invariants(&why)) << "nth=" << nth << ": " << why;
  const auto& post = h->flight_postmortem();
  ASSERT_FALSE(post.empty());
  std::uint64_t max_seq = 0;
  bool child_opened = false;
  for (const auto& e : post) {
    max_seq = std::max(max_seq, e.seq);
    if (e.op == static_cast<std::uint16_t>(FlightOp::kOpen) &&
        e.seq > committed_seq) {
      child_opened = true;
    }
  }
  // The child's session boundary and its traffic up to the kill are the
  // "last pre-crash events": they must outlive the child.
  EXPECT_TRUE(child_opened) << "nth=" << nth;
  EXPECT_GT(max_seq, committed_seq) << "nth=" << nth;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FlightForkCrashSweep,
                         ::testing::Values(2, 5, 9, 14, 20, 27));

#endif  // POSEIDON_OBS_ENABLED

}  // namespace
}  // namespace poseidon::obs
