// Transactional allocation tests (paper §4.5, §5.3): micro-log commit
// semantics, leak reclamation of uncommitted transactions at recovery,
// and multi-thread transaction isolation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/heap.hpp"
#include "tests/test_util.hpp"

namespace poseidon::core {
namespace {

using test::small_opts;
using test::TempHeapPath;

TEST(Tx, CommittedAllocationsSurviveReopen) {
  TempHeapPath path("tx_commit");
  NvPtr a, b, c;
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    a = h->tx_alloc(64, false);
    b = h->tx_alloc(128, false);
    c = h->tx_alloc(256, true);  // commit
    ASSERT_FALSE(a.is_null() || b.is_null() || c.is_null());
    h->set_root(a);
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->stats().live_blocks, 3u);
  EXPECT_EQ(h->free(a), FreeResult::kOk);
  EXPECT_EQ(h->free(b), FreeResult::kOk);
  EXPECT_EQ(h->free(c), FreeResult::kOk);
}

TEST(Tx, UncommittedTransactionReclaimedOnReopen) {
  TempHeapPath path("tx_leak");
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    NvPtr committed = h->alloc(64);
    ASSERT_FALSE(committed.is_null());
    // Open a transaction and never commit it: these two allocations are
    // exactly the P and Q of the paper's §2.2 leak scenario.
    NvPtr p = h->tx_alloc(512, false);
    NvPtr q = h->tx_alloc(512, false);
    ASSERT_FALSE(p.is_null() || q.is_null());
    EXPECT_EQ(h->stats().live_blocks, 3u);
    h->tx_leak_open_transaction_for_test();
  }
  auto h = Heap::open(path.str(), small_opts());
  // Recovery freed P and Q; only the singleton allocation remains.
  EXPECT_EQ(h->stats().live_blocks, 1u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(Tx, CommitPreventsReclamation) {
  TempHeapPath path("tx_committed_kept");
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    (void)h->tx_alloc(64, true);  // single-allocation transaction
  }
  auto h = Heap::open(path.str(), small_opts());
  EXPECT_EQ(h->stats().live_blocks, 1u);
}

TEST(Tx, RecoveryIsIdempotentAcrossRepeatedOpens) {
  TempHeapPath path("tx_idem");
  {
    auto h = Heap::create(path.str(), 2 << 20, small_opts());
    (void)h->tx_alloc(128, false);
    (void)h->tx_alloc(128, false);
    h->tx_leak_open_transaction_for_test();
  }
  for (int round = 0; round < 3; ++round) {
    auto h = Heap::open(path.str(), small_opts());
    EXPECT_EQ(h->stats().live_blocks, 0u) << "round " << round;
    EXPECT_TRUE(h->check_invariants());
  }
}

TEST(Tx, SequentialTransactionsReuseThread) {
  TempHeapPath path("tx_seq");
  auto h = Heap::create(path.str(), 2 << 20, small_opts());
  for (int i = 0; i < 10; ++i) {
    NvPtr p = h->tx_alloc(64, false);
    NvPtr q = h->tx_alloc(64, true);
    ASSERT_FALSE(p.is_null() || q.is_null());
    EXPECT_EQ(h->free(p), FreeResult::kOk);
    EXPECT_EQ(h->free(q), FreeResult::kOk);
  }
  EXPECT_EQ(h->stats().live_blocks, 0u);
}

TEST(Tx, ConcurrentTransactionsAreIsolated) {
  TempHeapPath path("tx_conc");
  Options o = small_opts(4);
  o.policy = SubheapPolicy::kPerThread;
  auto h = Heap::create(path.str(), 4 << 20, o);
  constexpr int kThreads = 4, kTxPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxPerThread; ++i) {
        NvPtr a = h->tx_alloc(64, false);
        NvPtr b = h->tx_alloc(64, false);
        NvPtr c = h->tx_alloc(64, true);
        if (a.is_null() || b.is_null() || c.is_null()) {
          failures.fetch_add(1);
          continue;
        }
        // All three must come from the transaction's pinned sub-heap.
        if (a.subheap() != b.subheap() || b.subheap() != c.subheap()) {
          failures.fetch_add(1);
        }
        h->free(a);
        h->free(b);
        h->free(c);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(h->stats().live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

TEST(Tx, MicroLogCapacityBoundsTransactionSize) {
  TempHeapPath path("tx_cap");
  auto h = Heap::create(path.str(), 8 << 20, small_opts());
  std::vector<NvPtr> got;
  // The micro log holds kMicroCap entries; the next tx_alloc must fail.
  for (std::size_t i = 0; i < kMicroCap; ++i) {
    NvPtr p = h->tx_alloc(32, false);
    ASSERT_FALSE(p.is_null()) << i;
    got.push_back(p);
  }
  EXPECT_TRUE(h->tx_alloc(32, false).is_null());
  // Commit the full transaction and check the heap is balanced.
  NvPtr last = h->tx_alloc(32, true);
  EXPECT_TRUE(last.is_null());  // still over capacity, but commits the rest
  for (const auto& p : got) EXPECT_EQ(h->free(p), FreeResult::kOk);
  EXPECT_EQ(h->stats().live_blocks, 0u);
}

TEST(Tx, FailedTxAllocLeavesHeapBalanced) {
  TempHeapPath path("tx_oom");
  auto h = Heap::create(path.str(), 1 << 20, small_opts());
  // Transactional allocations never fall back to other sub-heaps, so an
  // oversized request fails cleanly inside the pinned one.
  NvPtr huge = h->tx_alloc(h->user_capacity() * 2, true);
  EXPECT_TRUE(huge.is_null());
  EXPECT_EQ(h->stats().live_blocks, 0u);
  EXPECT_TRUE(h->check_invariants());
}

}  // namespace
}  // namespace poseidon::core
