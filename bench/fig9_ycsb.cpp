// Figure 9: YCSB over the FAST-FAIR persistent B+-tree (paper §7.5).
// Load (insert-only) and Workload A (50/50 read-update, zipfian) are the
// allocation-heavy workloads the paper selects.  Expected shape: Poseidon
// mirrors or slightly beats PMDK despite fully segregated metadata;
// Makalu keeps up to ~16 threads then degrades.
//
// Keys default to 200k (paper: 10 M); override with POSEIDON_YCSB_KEYS.
#include "bench/bench_common.hpp"
#include "workloads/ycsb.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

int main() {
  const std::uint64_t nkeys = env_u64("POSEIDON_YCSB_KEYS", 200'000);
  print_header("fig9-ycsb", "Mops/s");
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      iface::AllocatorConfig cfg;
      // Tree nodes + 100 B values + churn slack.
      cfg.capacity = nkeys * 512 + (128ull << 20);
      cfg.nlanes = t;
      auto alloc = iface::make_allocator(kind, cfg);
      YcsbConfig yc;
      yc.nkeys = nkeys;
      yc.nthreads = t;
      yc.seconds = bench_seconds();
      const YcsbResult r = run_ycsb(*alloc, yc);
      print_point("fig9/load", iface::kind_name(kind), t, r.load_mops);
      print_point("fig9/workload-a", iface::kind_name(kind), t, r.a_mops);
      // Extension beyond the paper: read-heavy Workload B (95/5) shows the
      // allocator mattering less as updates (and thus allocations) thin out.
      iface::AllocatorConfig cfg_b = cfg;
      auto alloc_b = iface::make_allocator(kind, cfg_b);
      YcsbConfig yb = yc;
      yb.read_ratio = 0.95;
      const YcsbResult rb = run_ycsb(*alloc_b, yb);
      print_point("fig9/workload-b", iface::kind_name(kind), t, rb.a_mops);
    }
  }
  // Multi-process deployment shape: the tree's nodes and values allocated
  // through the allocation service (forked server, shm command rings),
  // reads and tree traversal staying local through the data windows.
  for (const unsigned t : default_thread_sweep()) {
    iface::AllocatorConfig cfg;
    cfg.capacity = nkeys * 512 + (128ull << 20);
    cfg.nlanes = t;
    cfg.svc = true;
    auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
    YcsbConfig yc;
    yc.nkeys = nkeys;
    yc.nthreads = t;
    yc.seconds = bench_seconds();
    const YcsbResult r = run_ycsb(*alloc, yc);
    print_point("fig9/load", "poseidon+svc", t, r.load_mops);
    print_point("fig9/workload-a", "poseidon+svc", t, r.a_mops);
  }
  return 0;
}
