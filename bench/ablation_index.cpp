// Ablation: constant-time metadata management (paper §4.7).  Poseidon
// claims O(1) alloc/free regardless of pool occupancy thanks to the
// multi-level hash table, versus tree-indexed designs whose metadata
// operations grow with the number of tracked blocks.
//
// Measures an alloc+free pair while the heap already holds N live 256-byte
// blocks, N in {1k, 8k, 64k, 256k}.  Poseidon's latency should stay flat;
// the baselines drift upward (PMDK's AVL + bitmap rescans in particular).
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc_iface/allocator.hpp"

using namespace poseidon;

namespace {

void bench_occupancy(benchmark::State& state, iface::AllocatorKind kind) {
  const auto live = static_cast<std::uint64_t>(state.range(0));
  iface::AllocatorConfig cfg;
  cfg.capacity = live * 512 + (64ull << 20);
  cfg.nlanes = 1;
  auto alloc = iface::make_allocator(kind, cfg);

  std::vector<void*> held;
  held.reserve(live);
  for (std::uint64_t i = 0; i < live; ++i) {
    void* p = alloc->alloc(256);
    if (p == nullptr) {
      state.SkipWithError("prefill exhausted the heap");
      return;
    }
    held.push_back(p);
  }

  for (auto _ : state) {
    void* p = alloc->alloc(256);
    benchmark::DoNotOptimize(p);
    alloc->free(p);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.SetLabel("live=" + std::to_string(live));
  for (void* p : held) alloc->free(p);
}

void BM_Occupancy_Poseidon(benchmark::State& state) {
  bench_occupancy(state, iface::AllocatorKind::kPoseidon);
}
void BM_Occupancy_PmdkLike(benchmark::State& state) {
  bench_occupancy(state, iface::AllocatorKind::kPmdkLike);
}
void BM_Occupancy_MakaluLike(benchmark::State& state) {
  bench_occupancy(state, iface::AllocatorKind::kMakaluLike);
}

}  // namespace

BENCHMARK(BM_Occupancy_Poseidon)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)->Arg(1 << 18);
BENCHMARK(BM_Occupancy_PmdkLike)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)->Arg(1 << 18);
BENCHMARK(BM_Occupancy_MakaluLike)->Arg(1 << 10)->Arg(1 << 13)->Arg(1 << 16)->Arg(1 << 18);

BENCHMARK_MAIN();
