// Figure 7: Larson benchmark — a server-style workload with concurrent,
// cross-thread allocations and deallocations of randomly sized objects
// (paper §7.3).  Expected shape: Poseidon leads by up to ~4x; PMDK's
// action log and Makalu's reclaim list throttle both baselines as thread
// counts rise.
//
// `--svc` runs only the multi-process comparison: the in-process
// thread-cached series against the allocation service (forked server, all
// traffic through the shm command rings; see EXPERIMENTS.md for the
// crossover discussion).
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include "bench/bench_common.hpp"
#include "core/heap.hpp"
#include "workloads/larson.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

namespace {

double run_larson_once(iface::AllocatorKind kind, unsigned t,
                       bool thread_cache, unsigned nshards = 1,
                       int persist_domain = -1, bool svc = false) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 256ull << 20;
  cfg.nlanes = t;
  cfg.nshards = nshards;
  cfg.thread_cache = thread_cache;
  cfg.persist_domain = persist_domain;
  cfg.svc = svc;
  auto alloc = iface::make_allocator(kind, cfg);
  LarsonConfig lc;
  lc.nthreads = t;
  lc.seconds = bench_seconds();
  return run_larson(*alloc, lc).ops_per_sec();
}

// The `poseidon+svc` series: one ring round-trip per magazine refill /
// free-batch instead of one lock acquisition per op — the client-side L1
// amortizes the IPC, the server-side L2 batches the undo commits.
void run_svc_sweep() {
  for (const unsigned t : default_thread_sweep()) {
    print_point("fig7/larson", "poseidon+svc", t,
                run_larson_once(iface::AllocatorKind::kPoseidon, t, true,
                                /*nshards=*/1, /*persist_domain=*/-1,
                                /*svc=*/true));
  }
}

// The `poseidon+snap` series: the thread-cached configuration with an
// online snapshot cycle riding on the run — a full copy at 1/3 of the
// measured window and an incremental refresh at 2/3.  The delta against
// `poseidon+tc` is the cost of the global-cut quiesce plus the copy
// competing for memory bandwidth; the incremental's page count (stderr
// note) shows the O(dirty) bound at work.
void run_snap_sweep() {
  const std::string heap_path =
      "/dev/shm/poseidon_fig7_snap_" + std::to_string(::getpid()) + ".heap";
  const std::string dst = heap_path + ".bak";
  for (const unsigned t : default_thread_sweep()) {
    iface::AllocatorConfig cfg;
    cfg.capacity = 256ull << 20;
    cfg.nlanes = t;
    cfg.thread_cache = true;
    cfg.path = heap_path;
    auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
    core::Heap* heap = alloc->poseidon_heap();

    const auto third =
        std::chrono::duration<double>(bench_seconds() / 3.0);
    std::uint64_t full_pages = 0;
    std::uint64_t incr_pages = 0;
    std::thread snapper([&] {
      std::this_thread::sleep_for(third);
      full_pages = heap->snapshot(dst).pages_copied;
      std::this_thread::sleep_for(third);
      incr_pages =
          heap->snapshot_incremental(dst, dst + "/MANIFEST").pages_copied;
    });
    LarsonConfig lc;
    lc.nthreads = t;
    lc.seconds = bench_seconds();
    const double ops = run_larson(*alloc, lc).ops_per_sec();
    snapper.join();
    print_point("fig7/larson", "poseidon+snap", t, ops);
    std::fprintf(stderr,
                 "# fig7 snap t=%u full_pages=%llu incr_pages=%llu\n", t,
                 static_cast<unsigned long long>(full_pages),
                 static_cast<unsigned long long>(incr_pages));
    // Drop the backup before the next point reuses the directory.
    const std::string head = dst + heap_path.substr(heap_path.rfind('/'));
    ::unlink((dst + "/MANIFEST").c_str());
    ::unlink(head.c_str());
    for (unsigned i = 1; i < 16; ++i) {
      ::unlink((head + ".shard" + std::to_string(i)).c_str());
    }
    ::rmdir(dst.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool svc_only = argc > 1 && std::strcmp(argv[1], "--svc") == 0;
  print_header("fig7-larson", "ops/s, cross-thread alloc/free");
  if (svc_only) {
    // Focused multi-process run: service vs the in-process configuration
    // it must stay within 2x of at 8+ threads (EXPERIMENTS.md).
    for (const unsigned t : default_thread_sweep()) {
      print_point("fig7/larson", "poseidon+tc", t,
                  run_larson_once(iface::AllocatorKind::kPoseidon, t, true));
    }
    run_svc_sweep();
    return 0;
  }
  // Thread-cache ablation series first; the plain runs below bypass it.
  for (const unsigned t : default_thread_sweep()) {
    print_point("fig7/larson", "poseidon+tc", t,
                run_larson_once(iface::AllocatorKind::kPoseidon, t, true));
  }
  // eADR ablation: thread-cached configuration with the persistence domain
  // forced to eADR — clwb loops elided, fences kept.  The delta against
  // poseidon+tc is the write-back cost under a server-style mix.
  for (const unsigned t : default_thread_sweep()) {
    print_point("fig7/larson", "poseidon+eadr", t,
                run_larson_once(iface::AllocatorKind::kPoseidon, t, true,
                                /*nshards=*/1, /*persist_domain=*/1));
  }
  // NUMA-shard ablation: two pool shards with per-thread routing, so the
  // series measures routing + cross-shard frees even on single-node boxes
  // (set POSEIDON_FAKE_NUMA=2 to also exercise the topology plumbing).
  for (const unsigned t : default_thread_sweep()) {
    print_point("fig7/larson", "poseidon+shards", t,
                run_larson_once(iface::AllocatorKind::kPoseidon, t, false,
                                /*nshards=*/2));
  }
  // Online-backup overhead: the same thread-cached mix with a full +
  // incremental snapshot cycle taken mid-run.
  run_snap_sweep();
  // Multi-process deployment shape: same workload, every operation through
  // the allocation service's shm rings.
  run_svc_sweep();
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      print_point("fig7/larson", iface::kind_name(kind), t,
                  run_larson_once(kind, t, false));
    }
  }
  return 0;
}
