// Figure 7: Larson benchmark — a server-style workload with concurrent,
// cross-thread allocations and deallocations of randomly sized objects
// (paper §7.3).  Expected shape: Poseidon leads by up to ~4x; PMDK's
// action log and Makalu's reclaim list throttle both baselines as thread
// counts rise.
#include "bench/bench_common.hpp"
#include "workloads/larson.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

int main() {
  print_header("fig7-larson", "ops/s, cross-thread alloc/free");
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      iface::AllocatorConfig cfg;
      cfg.capacity = 256ull << 20;
      cfg.nlanes = t;
      auto alloc = iface::make_allocator(kind, cfg);
      LarsonConfig lc;
      lc.nthreads = t;
      lc.seconds = bench_seconds();
      const LarsonResult r = run_larson(*alloc, lc);
      print_point("fig7/larson", iface::kind_name(kind), t, r.ops_per_sec());
    }
  }
  return 0;
}
