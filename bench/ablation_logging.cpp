// Ablation: crash-consistency cost (paper §4.5).  Undo + micro logging is
// Poseidon's durability mechanism; this measures what the logging and its
// persist barriers cost per operation by comparing against the (unsafe,
// ablation-only) logging-disabled mode, across allocation sizes, plus the
// incremental price of a transactional allocation (micro log append).
#include <benchmark/benchmark.h>

#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

void bench_logging(benchmark::State& state, bool undo_log, bool tx) {
  const std::string path =
      "/dev/shm/ablation_log_" + std::to_string(undo_log) +
      std::to_string(tx) + ".heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  opts.use_undo_log = undo_log;
  auto heap = core::Heap::create(path, 64ull << 20, opts);
  const auto size = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    core::NvPtr p =
        tx ? heap->tx_alloc(size, /*is_end=*/true) : heap->alloc(size);
    benchmark::DoNotOptimize(p);
    heap->free(p);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  heap.reset();
  pmem::Pool::unlink(path);
}

void BM_AllocFree_UndoLogging(benchmark::State& state) {
  bench_logging(state, /*undo_log=*/true, /*tx=*/false);
}
void BM_AllocFree_NoLogging_Unsafe(benchmark::State& state) {
  bench_logging(state, /*undo_log=*/false, /*tx=*/false);
}
void BM_TxAllocFree_MicroLogging(benchmark::State& state) {
  bench_logging(state, /*undo_log=*/true, /*tx=*/true);
}

}  // namespace

BENCHMARK(BM_AllocFree_UndoLogging)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_AllocFree_NoLogging_Unsafe)->Arg(64)->Arg(4096)->Arg(262144);
BENCHMARK(BM_TxAllocFree_MicroLogging)->Arg(64)->Arg(4096)->Arg(262144);

BENCHMARK_MAIN();
