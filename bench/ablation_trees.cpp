// Ablation: index-structure tradeoffs over the same allocator.  The
// FAST-FAIR tree (raw pointers, optimistic per-node locking) is the
// scalable in-run index the paper benchmarks; PersistentBTree (packed
// persistent references, one tree lock) survives restarts.  Measures what
// the durability of the representation costs on the insert path.
#include <benchmark/benchmark.h>

#include "alloc_iface/allocator.hpp"
#include "common/hash.hpp"
#include "core/heap.hpp"
#include "index/fastfair.hpp"
#include "index/pbtree.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

void BM_Insert_FastFair(benchmark::State& state) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 256ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  index::FastFairTree tree(alloc.get());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.insert(mix64(++i), i));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Insert_PersistentBTree(benchmark::State& state) {
  const std::string path = "/dev/shm/ablation_trees.heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  auto heap = core::Heap::create(path, 256ull << 20, opts);
  index::PersistentBTree tree = index::PersistentBTree::create(*heap);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.insert(mix64(++i), i));
  }
  state.SetItemsProcessed(state.iterations());
  heap.reset();
  pmem::Pool::unlink(path);
}

void BM_Search_FastFair(benchmark::State& state) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  auto alloc = iface::make_allocator(iface::AllocatorKind::kPoseidon, cfg);
  index::FastFairTree tree(alloc.get());
  for (std::uint64_t i = 1; i <= 100000; ++i) tree.insert(mix64(i), i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.search(mix64(1 + (++i % 100000))));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_Search_PersistentBTree(benchmark::State& state) {
  const std::string path = "/dev/shm/ablation_trees2.heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  auto heap = core::Heap::create(path, 64ull << 20, opts);
  index::PersistentBTree tree = index::PersistentBTree::create(*heap);
  for (std::uint64_t i = 1; i <= 100000; ++i) tree.insert(mix64(i), i);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.search(mix64(1 + (++i % 100000))));
  }
  state.SetItemsProcessed(state.iterations());
  heap.reset();
  pmem::Pool::unlink(path);
}

}  // namespace

BENCHMARK(BM_Insert_FastFair);
BENCHMARK(BM_Insert_PersistentBTree);
BENCHMARK(BM_Search_FastFair);
BENCHMARK(BM_Search_PersistentBTree);

BENCHMARK_MAIN();
