// Ablation: per-CPU sub-heaps (paper §4.1).  Fixes the thread count and
// sweeps the number of sub-heaps from 1 (a single contended heap — what a
// global design would look like) up to one per thread, showing where
// Poseidon's scalability actually comes from.
#include <atomic>
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"
#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

namespace {

double run_one(unsigned nthreads, unsigned nsubheaps) {
  const std::string path = "/dev/shm/ablation_sub.heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = nsubheaps;
  opts.policy = core::SubheapPolicy::kPerThread;
  auto heap = core::Heap::create(path, 128ull << 20, opts);
  const RunResult r = run_timed(
      nthreads, bench_seconds(),
      [&](unsigned tid, const std::atomic<bool>& stop) -> std::uint64_t {
        Xoshiro256 rng(0x5ab + tid);
        std::vector<core::NvPtr> pool;
        pool.reserve(100);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          if (pool.size() < 100 && (pool.empty() || (rng.next() & 1))) {
            core::NvPtr p = heap->alloc(256);
            if (!p.is_null()) {
              pool.push_back(p);
              ++ops;
            }
          } else {
            const std::size_t i = rng.next_below(pool.size());
            heap->free(pool[i]);
            pool[i] = pool.back();
            pool.pop_back();
            ++ops;
          }
        }
        for (const auto& p : pool) heap->free(p);
        return ops;
      });
  heap.reset();
  pmem::Pool::unlink(path);
  return r.mops();
}

}  // namespace

int main() {
  const unsigned nthreads = default_thread_sweep().back();
  print_header("ablation-subheaps",
               "Mops/s at " + std::to_string(nthreads) + " threads");
  for (unsigned subs = 1; subs <= nthreads; subs *= 2) {
    const double mops = run_one(nthreads, subs);
    print_point("ablation/subheaps", std::to_string(subs) + "-subheaps",
                nthreads, mops);
  }
  return 0;
}
