// Shared plumbing for the figure-reproduction benchmark binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc_iface/allocator.hpp"
#include "workloads/harness.hpp"

namespace poseidon::bench {

inline const std::vector<iface::AllocatorKind>& all_allocators() {
  static const std::vector<iface::AllocatorKind> kinds = {
      iface::AllocatorKind::kPoseidon,
      iface::AllocatorKind::kPmdkLike,
      iface::AllocatorKind::kMakaluLike,
  };
  return kinds;
}

inline std::uint64_t env_u64(const char* name, std::uint64_t def) {
  if (const char* v = std::getenv(name)) {
    const std::uint64_t x = std::strtoull(v, nullptr, 10);
    if (x > 0) return x;
  }
  return def;
}

// Flight-recorder mode for the benches' "poseidon+fr" observability series
// (AllocatorConfig::flight: 0 = off, 1 = DRAM ring, 2 = persistent ring).
// POSEIDON_BENCH_FLIGHT overrides; the default measures the most expensive
// mode, the per-event-flushed persistent ring.
inline int bench_flight_mode() {
  if (const char* v = std::getenv("POSEIDON_BENCH_FLIGHT")) {
    const long x = std::strtol(v, nullptr, 10);
    if (x >= 0 && x <= 2) return static_cast<int>(x);
  }
  return 2;
}

// Human label for a byte size (256B, 4KB, ...).
inline std::string size_label(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%lluMB",
                  static_cast<unsigned long long>(bytes >> 20));
  } else if (bytes >= 1024) {
    std::snprintf(buf, sizeof(buf), "%lluKB",
                  static_cast<unsigned long long>(bytes >> 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%lluB",
                  static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace poseidon::bench
