// Ablation: lazy defragmentation (the paper's §5.4 design) vs classic
// eager buddy coalescing.
//
//   * steady churn at one size: lazy never merges (nothing to gain) while
//     eager pays merge+resplit work on every free/alloc cycle;
//   * size-alternating churn (small storm, then a big request): lazy pays
//     a defragmentation pass exactly when the big request arrives, eager
//     already has the big block.
// The paper picks lazy for the first shape, which dominates allocator-
// bound workloads; this quantifies what that choice costs on the second.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

std::unique_ptr<core::Heap> make_heap(bool eager, const char* tag) {
  const std::string path =
      std::string("/dev/shm/ablation_defrag_") + tag + ".heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  opts.eager_coalesce = eager;
  return core::Heap::create(path, 64ull << 20, opts);
}

void churn_one_size(benchmark::State& state, bool eager) {
  auto heap = make_heap(eager, eager ? "se" : "sl");
  for (auto _ : state) {
    core::NvPtr p = heap->alloc(256);
    benchmark::DoNotOptimize(p);
    heap->free(p);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  pmem::Pool::unlink(heap->path());
}

void storm_then_big(benchmark::State& state, bool eager) {
  auto heap = make_heap(eager, eager ? "be" : "bl");
  for (auto _ : state) {
    // Small storm: 512 x 1 KB, freed again...
    std::vector<core::NvPtr> storm;
    storm.reserve(512);
    for (int i = 0; i < 512; ++i) storm.push_back(heap->alloc(1024));
    for (const auto& p : storm) heap->free(p);
    // ...then one big request that needs the space merged back together.
    core::NvPtr big = heap->alloc(1ull << 20);
    benchmark::DoNotOptimize(big);
    heap->free(big);
  }
  state.SetItemsProcessed(state.iterations() * (512 * 2 + 2));
  pmem::Pool::unlink(heap->path());
}

void BM_SteadyChurn_Lazy(benchmark::State& s) { churn_one_size(s, false); }
void BM_SteadyChurn_Eager(benchmark::State& s) { churn_one_size(s, true); }
void BM_StormThenBig_Lazy(benchmark::State& s) { storm_then_big(s, false); }
void BM_StormThenBig_Eager(benchmark::State& s) { storm_then_big(s, true); }

}  // namespace

BENCHMARK(BM_SteadyChurn_Lazy);
BENCHMARK(BM_SteadyChurn_Eager);
BENCHMARK(BM_StormThenBig_Lazy);
BENCHMARK(BM_StormThenBig_Eager);

BENCHMARK_MAIN();
