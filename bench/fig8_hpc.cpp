// Figure 8: real-world, computation-intensive benchmarks (paper §7.4):
//   * Ackermann — one large allocation per iteration used as a memoization
//     cache (the paper uses 1 GB; size here is POSEIDON_ACK_BYTES,
//     default 4 MB so the allocator, not memset-speed, dominates);
//   * Kruskal  — three 512 B allocations + MST of order 5 per iteration;
//   * N-Queens — one 32 B allocation + 8-queens solve per iteration.
//
// Expected shape: Poseidon wide margins on Ackermann (Makalu's global
// chunk lock) and N-Queens (PMDK pool placement); Makalu competitive at
// low thread counts on Kruskal (no logging) but falling behind as threads
// grow.
#include "bench/bench_common.hpp"
#include "workloads/kernels.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

namespace {

double run_ackermann(iface::AllocatorKind kind, unsigned nthreads,
                     std::uint64_t region) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 4 * region * nthreads + (64ull << 20);
  cfg.nlanes = nthreads;
  auto alloc = iface::make_allocator(kind, cfg);
  const RunResult r = run_timed(
      nthreads, bench_seconds(),
      [&](unsigned, const std::atomic<bool>& stop) -> std::uint64_t {
        std::uint64_t iters = 0;
        volatile std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          void* p = alloc->alloc(region);
          if (p == nullptr) break;
          sink = ackermann_fill(p, region);
          alloc->free(p);
          ++iters;
        }
        return iters;
      });
  return r.ops / r.seconds;  // iterations per second
}

double run_kruskal(iface::AllocatorKind kind, unsigned nthreads) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  cfg.nlanes = nthreads;
  auto alloc = iface::make_allocator(kind, cfg);
  const RunResult r = run_timed(
      nthreads, bench_seconds(),
      [&](unsigned tid, const std::atomic<bool>& stop) -> std::uint64_t {
        std::uint64_t iters = 0;
        volatile std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          // The paper's three 512-byte allocations per MST of order 5.
          void* edges = alloc->alloc(kKruskalBufBytes);
          void* uf = alloc->alloc(kKruskalBufBytes);
          void* out = alloc->alloc(kKruskalBufBytes);
          if (edges == nullptr || uf == nullptr || out == nullptr) break;
          sink = kruskal_mst(edges, uf, out, 5, iters + tid);
          alloc->free(out);
          alloc->free(uf);
          alloc->free(edges);
          ++iters;
        }
        return iters;
      });
  return r.ops / r.seconds;
}

double run_nqueens(iface::AllocatorKind kind, unsigned nthreads) {
  iface::AllocatorConfig cfg;
  cfg.capacity = 64ull << 20;
  cfg.nlanes = nthreads;
  auto alloc = iface::make_allocator(kind, cfg);
  const RunResult r = run_timed(
      nthreads, bench_seconds(),
      [&](unsigned, const std::atomic<bool>& stop) -> std::uint64_t {
        std::uint64_t iters = 0;
        volatile std::uint64_t sink = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          void* board = alloc->alloc(32);  // the paper's 32-byte allocation
          if (board == nullptr) break;
          sink = nqueens_solve(board, 8);
          alloc->free(board);
          ++iters;
        }
        return iters;
      });
  return r.ops / r.seconds;
}

}  // namespace

int main() {
  const std::uint64_t region = env_u64("POSEIDON_ACK_BYTES", 4ull << 20);
  print_header("fig8-hpc", "iterations/s");
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      print_point("fig8/ackermann", iface::kind_name(kind), t,
                  run_ackermann(kind, t, region));
    }
  }
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      print_point("fig8/kruskal", iface::kind_name(kind), t,
                  run_kruskal(kind, t));
    }
  }
  for (const auto kind : all_allocators()) {
    for (const unsigned t : default_thread_sweep()) {
      print_point("fig8/nqueens", iface::kind_name(kind), t,
                  run_nqueens(kind, t));
    }
  }
  return 0;
}
