// Ablation: cost of metadata protection (paper §4.3 claims wrpkru costs
// ~23 cycles, i.e. MPK protection is nearly free).  Measures a Poseidon
// alloc+free pair under each available protection mode:
//   none      — no protection (lower bound);
//   pkey      — real MPK (only on PKU hardware; matches the paper);
//   mprotect  — the fallback emulation, showing the syscall+TLB tax that
//               justifies *not* charging it to Poseidon in the figure
//               benches on non-PKU machines (see DESIGN.md).
#include <benchmark/benchmark.h>

#include "core/heap.hpp"
#include "mpk/mpk.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

void bench_pair(benchmark::State& state, mpk::ProtectMode mode) {
  const std::string path =
      "/dev/shm/ablation_prot_" + std::to_string(static_cast<int>(mode)) +
      ".heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  opts.protect = mode;
  auto heap = core::Heap::create(path, 16ull << 20, opts);
  for (auto _ : state) {
    core::NvPtr p = heap->alloc(256);
    benchmark::DoNotOptimize(p);
    heap->free(p);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  heap.reset();
  pmem::Pool::unlink(path);
}

void BM_AllocFree_NoProtection(benchmark::State& state) {
  bench_pair(state, mpk::ProtectMode::kNone);
}

void BM_AllocFree_Pkey(benchmark::State& state) {
  if (!mpk::pku_supported()) {
    state.SkipWithError("CPU lacks PKU; pkey mode unavailable");
    return;
  }
  bench_pair(state, mpk::ProtectMode::kPkey);
}

void BM_AllocFree_Mprotect(benchmark::State& state) {
  bench_pair(state, mpk::ProtectMode::kMprotect);
}

}  // namespace

BENCHMARK(BM_AllocFree_NoProtection);
BENCHMARK(BM_AllocFree_Pkey);
BENCHMARK(BM_AllocFree_Mprotect);

BENCHMARK_MAIN();
