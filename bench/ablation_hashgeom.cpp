// Ablation: multi-level hash table geometry.  level0_slots decides how
// quickly the table spills into further levels: small level-0 keeps the
// metadata footprint tiny (levels get hole-punched when empty) but makes
// lookups touch more levels at high occupancy; large level-0 pre-pays
// footprint for flatter probing.  Measures an alloc+free pair at high
// occupancy for several geometries, plus each geometry's actually-backed
// metadata bytes.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

void bench_geometry(benchmark::State& state) {
  const auto level0 = static_cast<std::uint64_t>(state.range(0));
  const auto live = static_cast<std::uint64_t>(state.range(1));
  const std::string path = "/dev/shm/ablation_geom_" +
                           std::to_string(level0) + "_" +
                           std::to_string(live) + ".heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  opts.level0_slots = level0;
  auto heap = core::Heap::create(path, 64ull << 20, opts);

  std::vector<core::NvPtr> held;
  held.reserve(live);
  for (std::uint64_t i = 0; i < live; ++i) {
    core::NvPtr p = heap->alloc(64);
    if (p.is_null()) {
      state.SkipWithError("prefill exhausted the heap");
      return;
    }
    held.push_back(p);
  }

  for (auto _ : state) {
    core::NvPtr p = heap->alloc(64);
    benchmark::DoNotOptimize(p);
    heap->free(p);
  }
  state.SetItemsProcessed(state.iterations() * 2);
  state.counters["meta_backed_kb"] = static_cast<double>(
      heap->file_allocated_bytes() / 1024.0);
  state.counters["hash_levels_grown"] =
      static_cast<double>(heap->stats().hash_extensions);
  for (const auto& p : held) heap->free(p);
  heap.reset();
  pmem::Pool::unlink(path);
}

}  // namespace

BENCHMARK(bench_geometry)
    ->ArgsProduct({{256, 1024, 4096}, {1 << 12, 1 << 16, 1 << 18}})
    ->ArgNames({"level0", "live"});

BENCHMARK_MAIN();
