// Figure 6: pairs of 100 mallocs and 100 frees in random order, with
// different allocation sizes (256 B … 512 KB), swept over thread counts,
// with no inter-thread frees ("ideal maximum performance").
//
// Expected shape (paper §7.2): Poseidon scales near-linearly at every
// size; PMDK saturates/inverts past its arena count; Makalu collapses for
// sizes above its 400 B global-lock threshold and trails below it due to
// the global reclaim list.
#include <vector>

#include "bench/bench_common.hpp"
#include "common/rng.hpp"

using namespace poseidon;
using namespace poseidon::bench;
using namespace poseidon::workloads;

namespace {

constexpr unsigned kPoolDepth = 100;  // the paper's 100-alloc/100-free pair

double run_one(iface::AllocatorKind kind, std::uint64_t size,
               unsigned nthreads, bool thread_cache, int flight = 1,
               int persist_domain = -1) {
  iface::AllocatorConfig cfg;
  // Working set: up to kPoolDepth live objects per thread, doubled for
  // fragmentation slack, floor 64 MB.
  const std::uint64_t want = 2 * kPoolDepth * size * nthreads;
  cfg.capacity = want < (64ull << 20) ? (64ull << 20) : want;
  cfg.nlanes = nthreads;  // per-CPU sub-heaps on the paper's box
  cfg.thread_cache = thread_cache;
  cfg.flight = flight;
  cfg.persist_domain = persist_domain;
  auto alloc = iface::make_allocator(kind, cfg);

  const RunResult r = run_timed(
      nthreads, bench_seconds(),
      [&](unsigned tid, const std::atomic<bool>& stop) -> std::uint64_t {
        Xoshiro256 rng(0xF16'6 + tid);
        std::vector<void*> pool;
        pool.reserve(kPoolDepth);
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const bool do_alloc =
              pool.empty() ||
              (pool.size() < kPoolDepth && (rng.next() & 1) != 0);
          if (do_alloc) {
            void* p = alloc->alloc(size);
            if (p != nullptr) {
              pool.push_back(p);
              ++ops;
            }
          } else {
            const std::size_t i = rng.next_below(pool.size());
            alloc->free(pool[i]);
            pool[i] = pool.back();
            pool.pop_back();
            ++ops;
          }
        }
        for (void* p : pool) alloc->free(p);
        return ops;
      });
  return r.mops();
}

}  // namespace

int main() {
  const std::vector<std::uint64_t> sizes = {256,        1024,       4096,
                                            128 * 1024, 256 * 1024, 512 * 1024};
  print_header("fig6-microbench", "Mops/s, 100-alloc/100-free pairs");
  for (const std::uint64_t size : sizes) {
    // Poseidon with the crash-safe thread cache, as its own series; the
    // plain "poseidon" run below is the cache-bypass ablation.
    for (const unsigned t : default_thread_sweep()) {
      const double mops =
          run_one(iface::AllocatorKind::kPoseidon, size, t, true);
      print_point("fig6/" + size_label(size), "poseidon+tc", t, mops);
    }
    // Observability-overhead series: same configuration plus the flight
    // recorder in its most expensive mode (persistent ring, flushed per
    // event by default — POSEIDON_BENCH_FLIGHT overrides).  Compare with
    // poseidon+tc to read off the recorder's cost.
    for (const unsigned t : default_thread_sweep()) {
      const double mops = run_one(iface::AllocatorKind::kPoseidon, size, t,
                                  true, bench_flight_mode());
      print_point("fig6/" + size_label(size), "poseidon+fr", t, mops);
    }
    // eADR series: same configuration as poseidon+tc but with the
    // persistence domain forced to eADR, eliding every clwb loop (the
    // fence stays).  Compare with poseidon+tc to read off the write-back
    // cost — largest at small sizes, where barriers dominate.
    for (const unsigned t : default_thread_sweep()) {
      const double mops = run_one(iface::AllocatorKind::kPoseidon, size, t,
                                  true, 1, /*persist_domain=*/1);
      print_point("fig6/" + size_label(size), "poseidon+eadr", t, mops);
    }
    for (const auto kind : all_allocators()) {
      for (const unsigned t : default_thread_sweep()) {
        const double mops = run_one(kind, size, t, false);
        print_point("fig6/" + size_label(size), iface::kind_name(kind), t,
                    mops);
      }
    }
  }
  return 0;
}
