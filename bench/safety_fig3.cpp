// Figure 3: heap-metadata corruption from a heap overwrite (paper §3.2).
// Replays both exploits against the PMDK-like baseline — where they
// succeed, exactly as the paper shows — and against Poseidon, where the
// fully segregated metadata leaves nothing adjacent to corrupt and the
// hash-table validation rejects the resulting bogus frees.
//
// Not a throughput benchmark: prints the observed outcome of each attack.
#include <cstdio>
#include <cstring>
#include <vector>

#include "baselines/pmdk_like/pmdk_heap.hpp"
#include "core/heap.hpp"
#include "pmem/pool.hpp"

using namespace poseidon;

namespace {

void pmdk_overlapping_allocation() {
  const char* path = "/dev/shm/fig3_overlap.heap";
  pmem::Pool::unlink(path);
  auto heap = baselines::PmdkHeap::create(path, 4ull << 20);

  // Make the heap full of 64-byte-class objects (paper lines 5-9).
  std::vector<void*> objs;
  for (;;) {
    void* p = heap->alloc(48);
    if (p == nullptr) break;
    objs.push_back(p);
  }

  // Corrupt the in-place header of one object to a larger size, then free
  // it (paper lines 11-17).
  void* victim = objs[objs.size() / 2];
  *reinterpret_cast<std::uint64_t*>(static_cast<char*>(victim) - 16) = 1088;
  heap->free(victim);

  // One object was freed, so exactly one allocation should succeed.  Count
  // what actually comes back (paper lines 19-29).
  unsigned reallocated = 0;
  bool overlap = false;
  for (;;) {
    void* p = heap->alloc(48);
    if (p == nullptr) break;
    ++reallocated;
    if (p != victim) overlap = true;
  }
  std::printf(
      "fig3/pmdk-like overlapping-alloc : freed 1 object, re-allocated %u "
      "(%s)\n",
      reallocated,
      overlap ? "SILENT USER DATA CORRUPTION — already-allocated memory "
                "handed out again"
              : "no overlap");
  heap.reset();
  pmem::Pool::unlink(path);
}

void pmdk_permanent_leak() {
  const char* path = "/dev/shm/fig3_leak.heap";
  pmem::Pool::unlink(path);
  auto heap = baselines::PmdkHeap::create(path, 64ull << 20);

  // Fill the heap with 2 MB objects (paper lines 35-39).
  std::vector<void*> objs;
  for (;;) {
    void* p = heap->alloc(2 * 1024 * 1024);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  const std::size_t nalloc = objs.size();

  // Corrupt every header to a smaller size before freeing (lines 41-48).
  for (void* p : objs) {
    *reinterpret_cast<std::uint64_t*>(static_cast<char*>(p) - 16) = 64;
    heap->free(p);
  }

  // All objects were freed, so the same number should be allocatable
  // again (lines 50-59).
  std::size_t again = 0;
  for (;;) {
    void* p = heap->alloc(2 * 1024 * 1024);
    if (p == nullptr) break;
    ++again;
  }
  std::printf(
      "fig3/pmdk-like permanent-leak    : %zu objects fit before, %zu after "
      "corrupt+free (%s)\n",
      nalloc, again,
      again < nalloc ? "PERMANENT PERSISTENT MEMORY LEAK" : "no leak");
  heap.reset();
  pmem::Pool::unlink(path);
}

void poseidon_same_attacks() {
  const char* path = "/dev/shm/fig3_poseidon.heap";
  pmem::Pool::unlink(path);
  core::Options opts;
  opts.nsubheaps = 1;
  auto heap = core::Heap::create(path, 8ull << 20, opts);

  std::vector<core::NvPtr> objs;
  for (;;) {
    core::NvPtr p = heap->alloc(64);
    if (p.is_null()) break;
    objs.push_back(p);
  }

  // There is no in-place header to corrupt: bytes before an object belong
  // to the *neighbouring object*, never to metadata.  Overwrite them
  // anyway (a worst-case heap underwrite), then free.
  core::NvPtr victim = objs[objs.size() / 2];
  auto* raw = static_cast<std::uint64_t*>(heap->raw(victim));
  raw[-1] = 1088;  // clobbers the previous object's user data only
  const auto r1 = heap->free(victim);

  unsigned reallocated = 0;
  bool overlap = false;
  for (;;) {
    core::NvPtr p = heap->alloc(64);
    if (p.is_null()) break;
    ++reallocated;
    if (!(p == victim)) overlap = true;
  }
  // Bogus frees derived from "corrupted pointers" are detected outright:
  // the single re-allocation handed the victim block back to us, so the
  // first free is legitimate and the second is a double free.
  (void)heap->free(victim);
  const auto r2 = heap->free(victim);                       // double free
  core::NvPtr wild = core::NvPtr::make(heap->heap_id(), 0,  // interior ptr
                                       victim.offset() + 32);
  const auto r3 = heap->free(wild);

  std::string why;
  const bool ok = heap->check_invariants(&why);
  std::printf(
      "fig3/poseidon same-attacks      : free=%s, re-allocated %u "
      "(overlap=%s), double-free=%s, invalid-free=%s, metadata %s\n",
      core::to_string(r1), reallocated, overlap ? "YES" : "no",
      core::to_string(r2), core::to_string(r3),
      ok ? "INTACT" : ("CORRUPT: " + why).c_str());
  heap.reset();
  pmem::Pool::unlink(path);
}

void pmdk_with_canary_mitigation() {
  // Paper §8: the canary mitigation stops the *propagation* of in-place
  // header corruption (no overlapping allocations), but cannot prevent
  // the leak of the object whose free was skipped.
  const char* path = "/dev/shm/fig3_canary.heap";
  pmem::Pool::unlink(path);
  auto heap = baselines::PmdkHeap::create(path, 4ull << 20, /*canary=*/true);
  std::vector<void*> objs;
  for (;;) {
    void* p = heap->alloc(48);
    if (p == nullptr) break;
    objs.push_back(p);
  }
  void* victim = objs[objs.size() / 2];
  *reinterpret_cast<std::uint64_t*>(static_cast<char*>(victim) - 16) = 1088;
  heap->free(victim);
  unsigned reallocated = 0;
  for (;;) {
    void* p = heap->alloc(48);
    if (p == nullptr) break;
    ++reallocated;
  }
  std::printf(
      "fig3/pmdk-like + canary (sec 8) : corrupted free skipped (%llu "
      "rejected), re-allocated %u -> no overlap, object leaked\n",
      static_cast<unsigned long long>(heap->canary_rejected_frees()),
      reallocated);
  heap.reset();
  pmem::Pool::unlink(path);
}

}  // namespace

int main() {
  std::printf("# fig3: heap overwrite attacks (paper section 3.2)\n");
  pmdk_overlapping_allocation();
  pmdk_permanent_leak();
  poseidon_same_attacks();
  pmdk_with_canary_mitigation();
  return 0;
}
