#!/usr/bin/env python3
"""Render the figure benches' output as ASCII charts (paper-figure style).

Accepts any mix of inputs and overlays them into one chart per figure:

  * text files of `<figure> <series> threads=N <value>` lines, as printed
    by fig6_microbench / fig7_larson / fig8_hpc / fig9_ycsb /
    ablation_subheaps;
  * directories of per-series JSON sidecars written by the harness when
    POSEIDON_BENCH_JSON_DIR is set (one
    {"figure": ..., "series": ..., "points": [...]} document per file).

Missing inputs, unparseable sidecars and partially-written series (e.g. a
bench interrupted mid-sweep) are skipped with a warning instead of
aborting, so an obs-overhead run can be overlaid on a baseline run even
when one of them is incomplete:

    $ POSEIDON_BENCH_JSON_DIR=out.obs build/bench/fig6_microbench
    $ cmake -B build.noobs -S . -DPOSEIDON_OBS=OFF && ...
    $ POSEIDON_BENCH_JSON_DIR=out.noobs build.noobs/bench/fig6_microbench
    $ ./bench/plot_series.py out.obs out.noobs

When two inputs carry the same (figure, series), the later one is renamed
`series@<input>` so both columns stay visible side by side.
"""
import json
import os
import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(\S+)\s+(\S+)\s+threads=(\d+)\s+([0-9.]+(?:e[+-]?\d+)?)\s*$")


def warn(msg):
    print(f"plot_series: {msg}", file=sys.stderr)


def load_text(path, out, tag):
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                fig, series, threads, value = m.groups()
                add_point(out, tag, fig, series, int(threads), float(value))


def load_sidecar(path, out, tag):
    """One harness JSON sidecar; tolerates truncated/partial documents."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        warn(f"skipping {path}: {e}")
        return
    fig, series = doc.get("figure"), doc.get("series")
    if not fig or not series:
        warn(f"skipping {path}: missing figure/series keys")
        return
    for pt in doc.get("points", []):
        try:
            add_point(out, tag, fig, series, int(pt["threads"]),
                      float(pt["value"]))
        except (KeyError, TypeError, ValueError):
            warn(f"{path}: ignoring malformed point {pt!r}")


def add_point(out, tag, fig, series, threads, value):
    # Overlay rule: a series name already claimed by an earlier input gets
    # this input's tag appended, so e.g. poseidon+tc vs poseidon+tc@noobs
    # plot side by side.
    claimed = out.setdefault("_owner", {})
    owner = claimed.setdefault((fig, series), tag)
    name = series if owner == tag else f"{series}@{tag}"
    out["figures"][fig][name][threads] = value


def load_inputs(paths):
    out = {"figures": defaultdict(lambda: defaultdict(dict))}
    for path in paths:
        tag = os.path.basename(os.path.normpath(path)) or path
        if os.path.isdir(path):
            names = sorted(os.listdir(path))
            sidecars = [n for n in names if n.endswith(".json")]
            if not sidecars:
                warn(f"skipping {path}: no .json sidecars")
            for name in sidecars:
                load_sidecar(os.path.join(path, name), out, tag)
        elif os.path.exists(path):
            try:
                load_text(path, out, tag)
            except OSError as e:
                warn(f"skipping {path}: {e}")
        else:
            warn(f"skipping {path}: no such file or directory")
    return out["figures"]


def fmt(v):
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k"
    return f"{v:.2f}"


def plot(fig, series):
    print(f"\n== {fig}")
    threads = sorted({t for s in series.values() for t in s})
    values = [v for s in series.values() for v in s.values()]
    if not threads or not values:
        print("   (no points)")
        return
    peak = max(values) or 1.0
    names = list(series)
    pad = max(12, max(len(n) for n in names))
    for name in names:
        pts = " ".join(
            f"t{t}={fmt(series[name][t])}" for t in threads
            if t in series[name])
        print(f"   {name:<{pad}} {pts}")
    # One bar row per series x thread bucket, normalized to the peak.
    width = 40
    for name in names:
        print(f"   {name:<{pad}} ", end="")
        for t in threads:
            v = series[name].get(t)
            if v is None:
                print(" " + "." * 3, end="")
                continue
            bars = max(1, int(v / peak * width / len(threads)))
            print(" " + "#" * bars, end="")
        print()


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    figures = load_inputs(sys.argv[1:])
    if not figures:
        sys.exit("no series found (expected '<fig> <series> threads=N "
                 "<value>' lines or a POSEIDON_BENCH_JSON_DIR directory)")
    for fig in sorted(figures):
        plot(fig, figures[fig])


if __name__ == "__main__":
    main()
