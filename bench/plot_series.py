#!/usr/bin/env python3
"""Render the figure benches' output as ASCII charts (paper-figure style).

Reads the `<figure> <series> threads=N <value>` lines that
fig6_microbench / fig7_larson / fig8_hpc / fig9_ycsb / ablation_subheaps
print, groups them by figure, and draws one thread-sweep chart per figure
with one column block per series — a quick visual check that the measured
shapes match the paper's.

    $ for b in build/bench/fig*; do $b; done | tee out.txt
    $ ./bench/plot_series.py out.txt
"""
import re
import sys
from collections import defaultdict

LINE = re.compile(
    r"^(\S+)\s+(\S+)\s+threads=(\d+)\s+([0-9.]+(?:e[+-]?\d+)?)\s*$")


def load(path):
    figures = defaultdict(lambda: defaultdict(dict))
    with open(path) as f:
        for line in f:
            m = LINE.match(line)
            if m:
                fig, series, threads, value = m.groups()
                figures[fig][series][int(threads)] = float(value)
    return figures


def fmt(v):
    if v >= 1e6:
        return f"{v / 1e6:.2f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k"
    return f"{v:.2f}"


def plot(fig, series, height=12):
    print(f"\n== {fig}")
    threads = sorted({t for s in series.values() for t in s})
    peak = max(v for s in series.values() for v in s.values()) or 1.0
    names = list(series)
    for name in names:
        pts = " ".join(
            f"t{t}={fmt(series[name][t])}" for t in threads
            if t in series[name])
        print(f"   {name:<12} {pts}")
    # One bar row per series x thread bucket, normalized to the peak.
    width = 40
    for name in names:
        print(f"   {name:<12} ", end="")
        for t in threads:
            v = series[name].get(t)
            if v is None:
                print(" " + "." * 3, end="")
                continue
            bars = max(1, int(v / peak * width / len(threads)))
            print(" " + "#" * bars, end="")
        print()


def main():
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    figures = load(sys.argv[1])
    if not figures:
        sys.exit("no series lines found (expected '<fig> <series> "
                 "threads=N <value>')")
    for fig in sorted(figures):
        plot(fig, figures[fig])


if __name__ == "__main__":
    main()
